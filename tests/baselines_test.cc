#include <gtest/gtest.h>

#include <memory>

#include "baselines/gossip_histogram.h"
#include "baselines/parametric.h"
#include "baselines/random_walk_sampler.h"
#include "baselines/tree_aggregation.h"
#include "baselines/uniform_peer_sampler.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void Build(const Distribution& dist, size_t n = 512,
             size_t items = 50000) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(1);
    const Dataset ds = GenerateDataset(dist, items, rng);
    ring_->InsertDatasetBulk(ds.keys);
  }

  NodeAddr Querier() { return ring_->AliveAddrs()[0]; }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(BaselinesTest, UniformPeerSamplerWorksOnUniformData) {
  // On uniform data B1's per-peer bias vanishes (every arc is equally
  // dense); only sampling noise remains.
  UniformDistribution dist;
  Build(dist);
  UniformPeerSamplerOptions opts;
  opts.num_peers = 128;
  UniformPeerSampler sampler(ring_.get(), opts);
  auto e = sampler.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.15);
  EXPECT_GT(e->cost.messages, 0u);
  // The count estimate shows B1's size bias even on uniform data: random-id
  // lookups land on peers proportionally to arc, and bigger arcs hold more
  // items, inflating the per-peer mean toward ~2x (size-biased sampling).
  EXPECT_GT(e->estimated_total_items, 50000.0);
  EXPECT_LT(e->estimated_total_items, 2.6 * 50000.0);
}

TEST_F(BaselinesTest, UniformPeerSamplerBiasedOnSkewedData) {
  // The point of B1: per-peer equal sampling under-weights hot peers.
  ZipfDistribution dist(1000, 1.1);
  Build(dist);
  UniformPeerSamplerOptions opts;
  opts.num_peers = 64;
  UniformPeerSampler sampler(ring_.get(), opts);
  auto e = sampler.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  // Bias keeps error well above what DDE achieves at similar peer count
  // (DDE at 64 probes lands ~0.02-0.15; B1 stays >0.1 under this skew).
  EXPECT_GT(CompareCdfToTruth(e->cdf, dist).ks, 0.08);
}

TEST_F(BaselinesTest, UniformPeerSamplerDeadQuerier) {
  UniformDistribution dist;
  Build(dist);
  const NodeAddr victim = Querier();
  ASSERT_TRUE(ring_->Crash(victim).ok());
  UniformPeerSampler sampler(ring_.get());
  EXPECT_TRUE(sampler.Estimate(victim).status().IsInvalidArgument());
}

TEST_F(BaselinesTest, RandomWalkSamplerNearUnbiasedOnSkewedData) {
  ZipfDistribution dist(1000, 1.1);
  Build(dist);
  RandomWalkSamplerOptions opts;
  opts.num_samples = 600;
  RandomWalkSampler sampler(ring_.get(), opts);
  auto e = sampler.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  // MH over Chord's (directed) neighbor graph leaves residual bias; the
  // point here is that it stays bounded under heavy skew, where the naive
  // B1 collapses toward uniform (KS ~ 0.4+). See E3.
  EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.2);
}

TEST_F(BaselinesTest, RandomWalkCostsFarMoreThanLookups) {
  UniformDistribution dist;
  Build(dist);
  RandomWalkSamplerOptions opts;
  opts.num_samples = 100;
  opts.walk_length = 20;
  RandomWalkSampler sampler(ring_.get(), opts);
  auto e = sampler.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  // >= walk_length steps * 2 messages per accepted sample.
  EXPECT_GT(e->cost.messages, 100u * 20u * 2u / 2u);
}

TEST_F(BaselinesTest, GossipConvergesWithRounds) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(dist, 256);
  GossipHistogramAggregator gossip(ring_.get());
  gossip.Initialize();
  Rng rng(3);
  const double err0 = gossip.MeanDisagreement(50, rng);
  for (int r = 0; r < 30; ++r) gossip.Step();
  const double err30 = gossip.MeanDisagreement(50, rng);
  EXPECT_LT(err30, err0 * 0.1);
  EXPECT_LT(err30, 0.05);
  EXPECT_EQ(gossip.rounds(), 30u);
}

TEST_F(BaselinesTest, GossipEstimateAtPeerIsValidCdf) {
  UniformDistribution dist;
  Build(dist, 128);
  GossipHistogramAggregator gossip(ring_.get());
  gossip.Initialize();
  for (int r = 0; r < 20; ++r) gossip.Step();
  auto cdf = gossip.EstimateAtPeer(ring_->AliveAddrs()[5]);
  ASSERT_TRUE(cdf.ok());
  EXPECT_LT(CompareCdfToTruth(*cdf, dist).ks, 0.1);
}

TEST_F(BaselinesTest, GossipEstimatedTotalConverges) {
  UniformDistribution dist;
  Build(dist, 128, 10000);
  GossipOptions gopts;
  gopts.uniform_partners = true;
  GossipHistogramAggregator gossip(ring_.get(), gopts);
  gossip.Initialize();
  for (int r = 0; r < 40; ++r) gossip.Step();
  auto total = gossip.EstimatedTotalAtPeer(ring_->AliveAddrs()[3]);
  ASSERT_TRUE(total.ok());
  EXPECT_NEAR(*total, 10000.0, 2000.0);
}

TEST_F(BaselinesTest, GossipCostPerRoundIsAboutN) {
  UniformDistribution dist;
  Build(dist, 200);
  GossipHistogramAggregator gossip(ring_.get());
  gossip.Initialize();
  const uint64_t sent = gossip.Step();
  EXPECT_GE(sent, 190u);
  EXPECT_LE(sent, 200u);
}

TEST_F(BaselinesTest, TreeAggregationIsExactUpToBins) {
  GaussianMixtureDistribution dist({{0.5, 0.3, 0.05}, {0.5, 0.7, 0.05}});
  Build(dist, 256);
  TreeAggregationOptions topts;
  topts.bins = 256;
  TreeAggregator tree(ring_.get(), topts);
  auto e = tree.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  // Reaches everyone, recovers the exact total, tiny CDF error (bin width).
  EXPECT_EQ(tree.peers_reached(), 256u);
  EXPECT_NEAR(e->estimated_total_items, 50000.0, 1e-6);
  EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.02);
}

TEST_F(BaselinesTest, TreeAggregationCostsOrderN) {
  UniformDistribution dist;
  Build(dist, 256);
  TreeAggregator tree(ring_.get());
  auto e = tree.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  // One request + one response per non-root peer.
  EXPECT_GE(e->cost.messages, 2u * 255u);
  EXPECT_LE(e->cost.messages, 3u * 256u);
}

TEST_F(BaselinesTest, ParametricFitNailsNormalData) {
  TruncatedNormalDistribution dist(0.5, 0.1);
  Build(dist);
  ParametricFitEstimator fit(ring_.get());
  auto e = fit.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  const PiecewiseLinearCdf cdf = e->ToPiecewiseCdf();
  EXPECT_LT(CompareCdfToTruth(cdf, dist).ks, 0.08);
}

TEST_F(BaselinesTest, ParametricFitFailsOnZipf) {
  ZipfDistribution dist(1000, 1.0);
  Build(dist);
  ParametricFitEstimator fit(ring_.get());
  auto e = fit.Estimate(Querier());
  ASSERT_TRUE(e.ok());
  const PiecewiseLinearCdf cdf = e->ToPiecewiseCdf();
  // Model misspecification: the motivating failure for distribution-free.
  EXPECT_GT(CompareCdfToTruth(cdf, dist).ks, 0.2);
}

}  // namespace
}  // namespace ringdde
