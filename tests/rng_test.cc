#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace ringdde {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64BoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(RngTest, UniformU64CoversAllResidues) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(19);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaledMoments) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Split();
  // Child should not replay the parent's stream.
  Rng parent_clone(43);
  parent_clone.NextU64();  // account for the split's draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == parent_clone.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(53);
  const auto sample = rng.SampleWithoutReplacement(1000, 50);
  ASSERT_EQ(sample.size(), 50u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_LT(sample[i - 1], sample[i]);
    EXPECT_LT(sample[i], 1000u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(59);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(61);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(SplitMix64Test, KnownFixedPointFree) {
  // Different inputs map to different outputs (spot check).
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(SplitMix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

}  // namespace
}  // namespace ringdde
