// Sketch algebra suite: the merge laws and codec guarantees the
// hierarchical aggregation path (core/sketch_aggregation.h) rests on.
//
//  - DensitySketch merge: bitwise commutativity, associativity within the
//    (depth+1)/K error bound, identity of the empty sketch, and
//    order-insensitivity of k-way merge accuracy.
//  - GkSketch merge: the mergeable-summaries ε·N rank guarantee survives
//    k-way merges (εa·Na + εb·Nb <= max(ε)·(Na+Nb)).
//  - Codecs: EncodedBytes() == real frame size, bit-exact round-trips, and
//    byte-flip fuzz in wire_test.cc style (decode never crashes, never
//    accepts a malformed grid).
//
// Run with `ctest -L sketch`.

#include "stats/density_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/gk_sketch.h"

namespace ringdde {
namespace {

std::vector<double> SortedSample(Rng* rng, size_t n, int shape) {
  std::vector<double> xs(n);
  for (size_t i = 0; i < n; ++i) {
    switch (shape % 3) {
      case 0: xs[i] = rng->UniformDouble(); break;
      case 1: xs[i] = rng->Normal(0.5, 0.15); break;
      default: xs[i] = rng->Exponential(4.0); break;
    }
  }
  std::sort(xs.begin(), xs.end());
  return xs;
}

/// Exact rank in a sorted array: #values <= x.
uint64_t ExactRank(const std::vector<double>& sorted, double x) {
  return static_cast<uint64_t>(
      std::upper_bound(sorted.begin(), sorted.end(), x) - sorted.begin());
}

/// Worst observed |RankOf - exact| / N over a probe grid.
double MaxRankErrorFraction(const DensitySketch& sk,
                            const std::vector<double>& sorted) {
  double worst = 0.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = sorted.front() +
                     (sorted.back() - sorted.front()) * (i / 200.0);
    const double err =
        std::abs(static_cast<double>(sk.RankOf(x)) -
                 static_cast<double>(ExactRank(sorted, x))) /
        static_cast<double>(sorted.size());
    worst = std::max(worst, err);
  }
  return worst;
}

// --- DensitySketch merge laws ----------------------------------------------

TEST(DensitySketchAlgebraTest, MergeIsBitwiseCommutative) {
  Rng rng(0xA1);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t levels = 16 + 8 * (trial % 4);
    DensitySketch a = DensitySketch::FromSorted(
        SortedSample(&rng, 200 + 50 * (trial % 5), trial), levels);
    DensitySketch b = DensitySketch::FromSorted(
        SortedSample(&rng, 300 + 70 * (trial % 3), trial + 1), levels);
    DensitySketch ab = a, ba = b;
    ASSERT_TRUE(ab.Merge(b).ok());
    ASSERT_TRUE(ba.Merge(a).ok());
    // operator== compares the knot doubles exactly — bit parity, not near.
    EXPECT_TRUE(ab == ba) << "trial " << trial;
  }
}

TEST(DensitySketchAlgebraTest, EmptySketchIsMergeIdentity) {
  Rng rng(0xA2);
  const DensitySketch a =
      DensitySketch::FromSorted(SortedSample(&rng, 500, 0), 32);
  DensitySketch left(32), right = a;
  ASSERT_TRUE(left.Merge(a).ok());
  ASSERT_TRUE(right.Merge(DensitySketch(32)).ok());
  EXPECT_TRUE(left == a);
  EXPECT_TRUE(right == a);
  EXPECT_EQ(right.merge_depth(), a.merge_depth());
}

TEST(DensitySketchAlgebraTest, MismatchedLevelsRejected) {
  Rng rng(0xA3);
  DensitySketch a = DensitySketch::FromSorted(SortedSample(&rng, 50, 0), 16);
  const DensitySketch b =
      DensitySketch::FromSorted(SortedSample(&rng, 50, 0), 32);
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
}

TEST(DensitySketchAlgebraTest, AssociativeWithinErrorBound) {
  // (a+b)+c vs a+(b+c): not bit-identical (each merge re-grids), but both
  // must satisfy the advertised (depth+1)/K rank-error contract against
  // the pooled data, and agree with each other within the summed bounds.
  Rng rng(0xA4);
  const uint32_t levels = 64;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> xa = SortedSample(&rng, 400, trial);
    std::vector<double> xb = SortedSample(&rng, 600, trial + 1);
    std::vector<double> xc = SortedSample(&rng, 300, trial + 2);
    const DensitySketch a = DensitySketch::FromSorted(xa, levels);
    const DensitySketch b = DensitySketch::FromSorted(xb, levels);
    const DensitySketch c = DensitySketch::FromSorted(xc, levels);

    DensitySketch left = a;
    ASSERT_TRUE(left.Merge(b).ok());
    ASSERT_TRUE(left.Merge(c).ok());
    DensitySketch bc = b;
    ASSERT_TRUE(bc.Merge(c).ok());
    DensitySketch right = a;
    ASSERT_TRUE(right.Merge(bc).ok());

    EXPECT_EQ(left.count(), right.count());
    std::vector<double> pooled;
    pooled.reserve(xa.size() + xb.size() + xc.size());
    pooled.insert(pooled.end(), xa.begin(), xa.end());
    pooled.insert(pooled.end(), xb.begin(), xb.end());
    pooled.insert(pooled.end(), xc.begin(), xc.end());
    std::sort(pooled.begin(), pooled.end());
    EXPECT_LE(MaxRankErrorFraction(left, pooled), left.ErrorBound());
    EXPECT_LE(MaxRankErrorFraction(right, pooled), right.ErrorBound());
    for (int i = 0; i <= 20; ++i) {
      const double p = i / 20.0;
      EXPECT_NEAR(left.Quantile(p), right.Quantile(p),
                  // Quantile disagreement is bounded by the summed rank
                  // slack mapped through the pooled spread.
                  (left.ErrorBound() + right.ErrorBound()) *
                      (pooled.back() - pooled.front()));
    }
  }
}

TEST(DensitySketchAlgebraTest, KWayMergeOrderInsensitiveAccuracy) {
  // Merging k peer sketches in ring order, reverse order, and interleaved
  // order must all honor the error contract for the pooled data — the
  // aggregation tree's shape must not be able to break accuracy.
  Rng rng(0xA5);
  const uint32_t levels = 64;
  const int k = 8;
  std::vector<std::vector<double>> parts;
  std::vector<DensitySketch> sketches;
  std::vector<double> pooled;
  for (int i = 0; i < k; ++i) {
    parts.push_back(SortedSample(&rng, 100 + 60 * i, i));
    sketches.push_back(DensitySketch::FromSorted(parts.back(), levels));
    pooled.insert(pooled.end(), parts.back().begin(), parts.back().end());
  }
  std::sort(pooled.begin(), pooled.end());

  const std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3, 4, 5, 6, 7},
      {7, 6, 5, 4, 3, 2, 1, 0},
      {3, 7, 0, 5, 1, 6, 2, 4},
  };
  for (const std::vector<int>& order : orders) {
    DensitySketch acc(levels);
    for (int idx : order) ASSERT_TRUE(acc.Merge(sketches[idx]).ok());
    EXPECT_EQ(acc.count(), pooled.size());
    EXPECT_LE(MaxRankErrorFraction(acc, pooled), acc.ErrorBound());
  }
}

TEST(DensitySketchAlgebraTest, MergeDepthTracksTreeHeight) {
  Rng rng(0xA6);
  const uint32_t levels = 32;
  DensitySketch leaf1 = DensitySketch::FromSorted(SortedSample(&rng, 64, 0),
                                                  levels);
  const DensitySketch leaf2 =
      DensitySketch::FromSorted(SortedSample(&rng, 64, 1), levels);
  EXPECT_EQ(leaf1.merge_depth(), 0u);
  ASSERT_TRUE(leaf1.Merge(leaf2).ok());
  EXPECT_EQ(leaf1.merge_depth(), 1u);
  DensitySketch parent =
      DensitySketch::FromSorted(SortedSample(&rng, 64, 2), levels);
  ASSERT_TRUE(parent.Merge(leaf1).ok());
  EXPECT_EQ(parent.merge_depth(), 2u);
  EXPECT_DOUBLE_EQ(parent.ErrorBound(), 3.0 / levels);
}

// --- GkSketch merge: ε·N preservation ---------------------------------------

TEST(GkSketchMergeTest, RankGuaranteePreservedAfterKWayMerge) {
  Rng rng(0xB1);
  const double eps = 0.02;
  for (int shape = 0; shape < 3; ++shape) {
    GkSketch merged(eps);
    std::vector<double> pooled;
    for (int part = 0; part < 6; ++part) {
      GkSketch piece(eps);
      std::vector<double> xs = SortedSample(&rng, 800 + 100 * part, shape);
      piece.AddAll(xs);
      pooled.insert(pooled.end(), xs.begin(), xs.end());
      merged.Merge(piece);
    }
    std::sort(pooled.begin(), pooled.end());
    ASSERT_EQ(merged.count(), pooled.size());
    EXPECT_DOUBLE_EQ(merged.epsilon(), eps);
    // The combine rule keeps every tuple's rank band within
    // εa·Na + εb·Nb <= ε·N at every step, so the g+Δ <= 2εN invariant is
    // preserved across all k merges. RankOf answers from the band of the
    // last tuple <= x (ignoring the successor's gap), so its guarantee
    // under that invariant is 2εN. The load-bearing claim: the bound does
    // NOT grow with the number of merges — a broken combine rule would
    // accumulate error per merge and blow well past this.
    const double n = static_cast<double>(pooled.size());
    for (int i = 0; i <= 300; ++i) {
      const double x = pooled.front() +
                       (pooled.back() - pooled.front()) * (i / 300.0);
      const double got = static_cast<double>(merged.RankOf(x));
      const double want = static_cast<double>(ExactRank(pooled, x));
      EXPECT_LE(std::abs(got - want), 2.0 * eps * n + 1.0)
          << "shape " << shape << " x " << x;
    }
    // Quantile honors its advertised εN slack band: the returned value's
    // true rank stays within the invariant-width window of the target.
    for (int i = 1; i < 20; ++i) {
      const double p = i / 20.0;
      const double got_rank =
          static_cast<double>(ExactRank(pooled, merged.Quantile(p)));
      EXPECT_LE(std::abs(got_rank - p * n), 3.0 * eps * n + 1.0)
          << "shape " << shape << " p " << p;
    }
  }
}

TEST(GkSketchMergeTest, MergeCommutesOnQuantileAnswers) {
  Rng rng(0xB2);
  GkSketch a(0.02), b(0.02);
  a.AddAll(SortedSample(&rng, 1500, 0));
  b.AddAll(SortedSample(&rng, 900, 1));
  GkSketch ab = a, ba = b;
  ab.Merge(b);
  ba.Merge(a);
  ASSERT_EQ(ab.count(), ba.count());
  const double n = static_cast<double>(ab.count());
  for (int i = 0; i <= 20; ++i) {
    const double p = i / 20.0;
    // Both orders answer within the shared guarantee, so they can differ
    // by at most 2ε·N in rank — check via cross-rank.
    EXPECT_LE(std::abs(static_cast<double>(ab.RankOf(ba.Quantile(p))) -
                       p * n),
              2.0 * 0.02 * n + 2.0);
  }
}

TEST(GkSketchMergeTest, MergeWithEmptyIsIdentityOnAnswers) {
  Rng rng(0xB3);
  GkSketch a(0.01);
  a.AddAll(SortedSample(&rng, 500, 0));
  const uint64_t before_count = a.count();
  const double q_before = a.Quantile(0.5);
  a.Merge(GkSketch(0.01));
  EXPECT_EQ(a.count(), before_count);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), q_before);
}

// --- Codec: exact sizes, round-trips, fuzz ----------------------------------

TEST(SketchCodecTest, DensitySketchEncodedBytesIsExact) {
  Rng rng(0xC1);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t levels = 8 + 16 * trial;
    DensitySketch sk = DensitySketch::FromSorted(
        SortedSample(&rng, 100 + 40 * trial, trial), levels);
    Encoder enc;
    sk.EncodeTo(&enc);
    EXPECT_EQ(sk.EncodedBytes(), enc.size());
  }
  // Empty sketches encode too (a zero-item peer still participates).
  DensitySketch empty(64);
  Encoder enc;
  empty.EncodeTo(&enc);
  EXPECT_EQ(empty.EncodedBytes(), enc.size());
}

TEST(SketchCodecTest, DensitySketchRoundTripsBitExactly) {
  Rng rng(0xC2);
  for (int trial = 0; trial < 20; ++trial) {
    DensitySketch sk = DensitySketch::FromSorted(
        SortedSample(&rng, 50 + 90 * trial, trial), 16 + 8 * (trial % 5));
    if (trial % 4 == 0) {
      DensitySketch other = DensitySketch::FromSorted(
          SortedSample(&rng, 70, trial + 1), sk.levels());
      ASSERT_TRUE(sk.Merge(other).ok());  // nonzero merge_depth too
    }
    Encoder enc;
    sk.EncodeTo(&enc);
    Decoder dec(enc.buffer());
    Result<DensitySketch> back = DensitySketch::DecodeFrom(&dec);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(*back == sk);
  }
}

TEST(SketchCodecTest, GkSketchRoundTripsAndSizeIsExact) {
  Rng rng(0xC3);
  for (int trial = 0; trial < 10; ++trial) {
    GkSketch sk(0.01 + 0.01 * trial);
    sk.AddAll(SortedSample(&rng, 200 + 300 * trial, trial));
    Encoder enc;
    sk.EncodeTo(&enc);
    EXPECT_EQ(sk.EncodedBytes(), enc.size());
    Decoder dec(enc.buffer());
    Result<GkSketch> back = GkSketch::DecodeFrom(&dec);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->count(), sk.count());
    EXPECT_EQ(back->tuple_count(), sk.tuple_count());
    EXPECT_DOUBLE_EQ(back->epsilon(), sk.epsilon());
    for (int i = 0; i <= 10; ++i) {
      EXPECT_DOUBLE_EQ(back->Quantile(i / 10.0), sk.Quantile(i / 10.0));
    }
  }
}

TEST(SketchCodecTest, ByteFlipFuzzNeverCrashes) {
  // wire_test.cc-style mutation fuzz: every mutant must decode to ok or a
  // clean error — and an ok decode must yield a structurally valid sketch
  // (ascending finite knots of the advertised grid shape).
  Rng rng(0xC4);
  DensitySketch sk =
      DensitySketch::FromSorted(SortedSample(&rng, 400, 0), 32);
  Encoder enc;
  sk.EncodeTo(&enc);
  const std::vector<uint8_t> pristine = enc.buffer();
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> bytes = pristine;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.UniformU64(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.UniformU64(8));
    }
    Decoder dec(bytes);
    Result<DensitySketch> got = DensitySketch::DecodeFrom(&dec);
    if (!got.ok()) continue;
    if (!got->empty()) {
      ASSERT_EQ(got->knots().size(), got->levels() + 1u);
      for (size_t i = 0; i < got->knots().size(); ++i) {
        ASSERT_TRUE(std::isfinite(got->knots()[i]));
        if (i > 0) {
          ASSERT_GE(got->knots()[i], got->knots()[i - 1]);
        }
      }
    }
  }
}

TEST(SketchCodecTest, TruncatedDensitySketchRejected) {
  Rng rng(0xC5);
  DensitySketch sk =
      DensitySketch::FromSorted(SortedSample(&rng, 100, 0), 16);
  Encoder enc;
  sk.EncodeTo(&enc);
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    std::vector<uint8_t> bytes(enc.buffer().begin(),
                               enc.buffer().begin() + cut);
    Decoder dec(bytes);
    EXPECT_FALSE(DensitySketch::DecodeFrom(&dec).ok()) << "cut " << cut;
  }
}

}  // namespace
}  // namespace ringdde
