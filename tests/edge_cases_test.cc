// Cross-module edge cases not naturally covered by the per-module suites.
#include <gtest/gtest.h>

#include <memory>

#include "core/density_estimator.h"
#include "core/dissemination.h"
#include "core/maintenance.h"
#include "core/wire.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

TEST(EdgeCaseTest, TwoNodeRingFullLifecycle) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(2).ok());
  ASSERT_TRUE(ring.InsertKeyBulk(0.3).ok());
  ASSERT_TRUE(ring.InsertKeyBulk(0.7).ok());
  // Lookups from both nodes reach the right owners.
  for (NodeAddr a : ring.AliveAddrs()) {
    Result<NodeAddr> owner = ring.Lookup(a, RingId::FromUnit(0.3));
    ASSERT_TRUE(owner.ok());
    EXPECT_EQ(*owner, *ring.OracleOwner(RingId::FromUnit(0.3)));
  }
  // One node leaves; the survivor owns everything.
  ASSERT_TRUE(ring.Leave(ring.AliveAddrs()[0]).ok());
  EXPECT_EQ(ring.AliveCount(), 1u);
  EXPECT_EQ(ring.TotalItems(), 2u);
  const NodeAddr lone = ring.AliveAddrs()[0];
  EXPECT_EQ(*ring.Lookup(lone, RingId(123)), lone);
}

TEST(EdgeCaseTest, EstimatorOnSingleNodeRingIsExact) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(1).ok());
  TruncatedNormalDistribution dist(0.5, 0.1);
  Rng rng(1);
  ring.InsertDatasetBulk(GenerateDataset(dist, 5000, rng).keys);
  DdeOptions opts;
  opts.num_probes = 4;
  opts.local_quantiles = 32;
  DistributionFreeEstimator est(&ring, opts);
  auto e = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  // One peer owns the full ring: the estimate is its (exact) local view.
  EXPECT_DOUBLE_EQ(e->estimated_total_items, 5000.0);
  EXPECT_DOUBLE_EQ(e->covered_fraction, 1.0);
  EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.05);
}

TEST(EdgeCaseTest, EstimatorWithMoreProbesThanPeers) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(16).ok());
  Rng rng(2);
  UniformDistribution dist;
  ring.InsertDatasetBulk(GenerateDataset(dist, 2000, rng).keys);
  DdeOptions opts;
  opts.num_probes = 500;  // >> 16 peers
  DistributionFreeEstimator est(&ring, opts);
  auto e = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  EXPECT_LE(e->peers_probed, 16u);
  EXPECT_NEAR(e->covered_fraction, 1.0, 1e-6);
  EXPECT_NEAR(e->estimated_total_items, 2000.0, 1.0);  // exact coverage
}

TEST(EdgeCaseTest, ProbesWithQuantilesLargerThanStores) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(64).ok());
  Rng rng(3);
  UniformDistribution dist;
  // ~2 items per peer, 16 quantiles requested: heavy duplication in the
  // quantile vectors must not break reconstruction.
  ring.InsertDatasetBulk(GenerateDataset(dist, 128, rng).keys);
  DdeOptions opts;
  opts.num_probes = 64;
  opts.local_quantiles = 16;
  DistributionFreeEstimator est(&ring, opts);
  auto e = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->cdf.IsNormalized());
  EXPECT_NEAR(e->estimated_total_items, 128.0, 40.0);
}

TEST(EdgeCaseTest, KeysAtDomainBoundaries) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(8).ok());
  ASSERT_TRUE(ring.InsertKeyBulk(0.0).ok());
  ASSERT_TRUE(
      ring.InsertKeyBulk(0x1.fffffffffffffp-1).ok());  // just below 1
  EXPECT_EQ(ring.TotalItems(), 2u);
  // Both erasable.
  EXPECT_TRUE(ring.EraseKeyBulk(0.0).ok());
  EXPECT_TRUE(ring.EraseKeyBulk(0x1.fffffffffffffp-1).ok());
}

TEST(EdgeCaseTest, WireRoundTripSurvivesResampling) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(128).ok());
  Rng rng(4);
  ZipfDistribution dist(100, 1.0);
  ring.InsertDatasetBulk(GenerateDataset(dist, 20000, rng).keys);
  DistributionFreeEstimator est(&ring, DdeOptions{});
  auto e = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  DensityEstimate compact = std::move(*e);
  compact.cdf = compact.cdf.Resampled(32);

  Encoder enc;
  EncodeDensityEstimate(compact, &enc);
  EXPECT_LT(enc.size(), 32u * 16u + 64u);
  Decoder dec(enc.buffer());
  auto decoded = DecodeDensityEstimate(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_LT(CompareCdfToTruth(decoded->cdf, dist).ks, 0.08);
}

TEST(EdgeCaseTest, DisseminationOfResampledEstimateIsCheap) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(128).ok());
  Rng rng(5);
  UniformDistribution dist;
  ring.InsertDatasetBulk(GenerateDataset(dist, 10000, rng).keys);
  DistributionFreeEstimator est(&ring, DdeOptions{});
  auto e = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());

  uint64_t bytes_full, bytes_small;
  {
    EstimateDisseminator diss(&ring);
    CostScope scope(net.counters());
    ASSERT_TRUE(diss.Broadcast(ring.AliveAddrs()[0], *e).ok());
    bytes_full = scope.Delta().bytes;
  }
  {
    DensityEstimate small = *e;  // copy
    small.cdf = small.cdf.Resampled(32);
    EstimateDisseminator diss(&ring);
    CostScope scope(net.counters());
    ASSERT_TRUE(diss.Broadcast(ring.AliveAddrs()[0], small).ok());
    bytes_small = scope.Delta().bytes;
  }
  EXPECT_LT(bytes_small, bytes_full / 2);
}

TEST(EdgeCaseTest, LookupHopBudgetExhaustionReported) {
  Network net;
  RingOptions ropts;
  ropts.max_lookup_hops = 0;  // pathological budget
  ChordRing ring(&net, ropts);
  ASSERT_TRUE(ring.CreateNetwork(64).ok());
  // With 0 allowed hops only targets owned by the querier's successor
  // resolve; most lookups must time out rather than loop.
  int timeouts = 0;
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    Result<NodeAddr> r =
        ring.Lookup(ring.AliveAddrs()[0], RingId(rng.NextU64()));
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsTimedOut());
      ++timeouts;
    }
  }
  EXPECT_GT(timeouts, 30);
}

TEST(EdgeCaseTest, MaintainerOnTinyRing) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(2).ok());
  Rng rng(7);
  UniformDistribution dist;
  ring.InsertDatasetBulk(GenerateDataset(dist, 100, rng).keys);
  DdeOptions opts;
  opts.num_probes = 8;
  EstimateMaintainer m(&ring, opts);
  ASSERT_TRUE(m.Start(ring.AliveAddrs()[0]).ok());
  net.events().RunUntil(200.0);
  EXPECT_GE(m.refreshes(), 3u);
  ASSERT_TRUE(m.current().has_value());
  EXPECT_NEAR(m.current()->estimated_total_items, 100.0, 1.0);
}

}  // namespace
}  // namespace ringdde
