// Robust reconstruction against faulty/lying probe responses.
#include <gtest/gtest.h>

#include <vector>

#include "core/global_cdf.h"

namespace ringdde {
namespace {

/// Builds an honest summary for arc [lo, hi) holding uniform data at
/// `density` items per unit domain.
LocalSummary HonestSummary(NodeAddr addr, double lo, double hi,
                           double density) {
  Node node(addr, RingId::FromUnit(hi));
  node.set_predecessor(NodeEntry{addr + 10000, RingId::FromUnit(lo)});
  const int count = static_cast<int>(density * (hi - lo));
  std::vector<double> keys;
  for (int i = 0; i < count; ++i) {
    keys.push_back(lo + (hi - lo) * (i + 0.5) / count);
  }
  node.InsertKeys(keys);
  return ComputeLocalSummary(node, 4);
}

/// A full tiling of [0,1) by `n` honest peers at uniform density 1000.
std::vector<LocalSummary> HonestTiling(int n) {
  std::vector<LocalSummary> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(HonestSummary(i + 1, static_cast<double>(i) / n,
                                static_cast<double>(i + 1) / n,
                                1000.0));
  }
  return out;
}

TEST(ByzantineTest, InflatedCountSkewsNaiveReconstruction) {
  std::vector<LocalSummary> ss = HonestTiling(20);
  ss[5].item_count *= 100;  // the lie: claims 100x its real data
  auto naive = ReconstructGlobalCdf(ss, {});
  ASSERT_TRUE(naive.ok());
  // One liar among 20 honest peers captures ~83% of the estimated mass.
  const double mass_at_liar =
      naive->cdf.Evaluate(0.30) - naive->cdf.Evaluate(0.25);
  EXPECT_GT(mass_at_liar, 0.5);
  EXPECT_GT(naive->estimated_total, 5000.0);  // vs true 1000
}

TEST(ByzantineTest, WinsorizationBoundsTheDamage) {
  std::vector<LocalSummary> ss = HonestTiling(20);
  ss[5].item_count *= 100;
  ReconstructionOptions robust;
  robust.density_winsor_fraction = 0.1;
  auto r = ReconstructGlobalCdf(ss, robust);
  ASSERT_TRUE(r.ok());
  // The liar's arc is clamped to the 90th-percentile density: near honest.
  const double mass_at_liar =
      r->cdf.Evaluate(0.30) - r->cdf.Evaluate(0.25);
  EXPECT_LT(mass_at_liar, 0.08);
  EXPECT_NEAR(r->estimated_total, 1000.0, 100.0);
}

TEST(ByzantineTest, DeflationAlsoClamped) {
  std::vector<LocalSummary> ss = HonestTiling(20);
  ss[7].item_count = 0;  // claims emptiness
  ss[7].quantiles.clear();
  ReconstructionOptions robust;
  robust.density_winsor_fraction = 0.1;
  auto r = ReconstructGlobalCdf(ss, robust);
  ASSERT_TRUE(r.ok());
  // The hole is raised to the 10th-percentile density (= honest here).
  EXPECT_NEAR(r->estimated_total, 1000.0, 60.0);
}

TEST(ByzantineTest, HonestDataUnaffectedByWinsorization) {
  const std::vector<LocalSummary> ss = HonestTiling(20);
  auto plain = ReconstructGlobalCdf(ss, {});
  ReconstructionOptions robust;
  robust.density_winsor_fraction = 0.1;
  auto wins = ReconstructGlobalCdf(ss, robust);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(wins.ok());
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(wins->cdf.Evaluate(x), plain->cdf.Evaluate(x), 1e-6);
  }
  EXPECT_NEAR(wins->estimated_total, plain->estimated_total, 1.0);
}

TEST(ByzantineTest, GenuineSpikesAreTheCost) {
  // An honest heavy spike looks exactly like a lie; winsorizing flattens
  // it. This is the documented trade-off, asserted so it stays visible.
  std::vector<LocalSummary> ss = HonestTiling(20);
  // Peer 10 honestly holds 20x density (a real hotspot).
  ss[10] = HonestSummary(11, 0.50, 0.55, 20000.0);
  ReconstructionOptions robust;
  robust.density_winsor_fraction = 0.1;
  auto wins = ReconstructGlobalCdf(ss, robust);
  auto plain = ReconstructGlobalCdf(ss, {});
  ASSERT_TRUE(wins.ok());
  ASSERT_TRUE(plain.ok());
  const double spike_plain =
      plain->cdf.Evaluate(0.55) - plain->cdf.Evaluate(0.50);
  const double spike_wins =
      wins->cdf.Evaluate(0.55) - wins->cdf.Evaluate(0.50);
  EXPECT_GT(spike_plain, 0.4);  // plain keeps the true hotspot
  EXPECT_LT(spike_wins, 0.1);   // robust flattens it
}

TEST(ByzantineTest, DisabledByDefault) {
  ReconstructionOptions opts;
  EXPECT_DOUBLE_EQ(opts.density_winsor_fraction, 0.0);
}

TEST(ByzantineTest, TooFewSegmentsSkipWinsorization) {
  std::vector<LocalSummary> ss{HonestSummary(1, 0.0, 0.5, 1000.0),
                               HonestSummary(2, 0.5, 1.0, 1000.0)};
  ReconstructionOptions robust;
  robust.density_winsor_fraction = 0.25;
  auto r = ReconstructGlobalCdf(ss, robust);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimated_total, 1000.0, 2.0);
}

}  // namespace
}  // namespace ringdde
