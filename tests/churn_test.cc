#include "ring/churn.h"

#include <gtest/gtest.h>

#include <memory>

namespace ringdde {
namespace {

class ChurnTest : public ::testing::Test {
 protected:
  void Build(size_t n, ChurnOptions churn_opts = {}) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
    }
    churn_ = std::make_unique<ChurnProcess>(ring_.get(), churn_opts);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  std::unique_ptr<ChurnProcess> churn_;
};

TEST_F(ChurnTest, MaintainsNetworkSizeInExpectation) {
  ChurnOptions opts;
  opts.mean_session_seconds = 100.0;
  opts.maintain_size = true;
  Build(128, opts);
  churn_->Start();
  net_->events().RunUntil(300.0);
  // Every departure triggers a join; size stays within a couple of the
  // target (transient off-by-a-few possible if a join fails).
  EXPECT_GE(ring_->AliveCount(), 120u);
  EXPECT_LE(ring_->AliveCount(), 132u);
  EXPECT_GT(churn_->joins(), 100u);
}

TEST_F(ChurnTest, DeparturesSplitPerGracefulFraction) {
  ChurnOptions opts;
  opts.mean_session_seconds = 50.0;
  opts.graceful_fraction = 1.0;
  Build(64, opts);
  churn_->Start();
  net_->events().RunUntil(200.0);
  EXPECT_GT(churn_->leaves(), 0u);
  EXPECT_EQ(churn_->crashes(), 0u);
}

TEST_F(ChurnTest, AllCrashMode) {
  ChurnOptions opts;
  opts.mean_session_seconds = 50.0;
  opts.graceful_fraction = 0.0;
  Build(64, opts);
  churn_->Start();
  net_->events().RunUntil(200.0);
  EXPECT_EQ(churn_->leaves(), 0u);
  EXPECT_GT(churn_->crashes(), 0u);
}

TEST_F(ChurnTest, DataConservedUnderGracefulChurn) {
  ChurnOptions opts;
  opts.mean_session_seconds = 60.0;
  opts.graceful_fraction = 1.0;
  Build(64, opts);
  const uint64_t before = ring_->TotalItems();
  churn_->Start();
  net_->events().RunUntil(300.0);
  EXPECT_EQ(ring_->TotalItems(), before);
}

TEST_F(ChurnTest, DataConservedUnderCrashesWithDurability) {
  ChurnOptions opts;
  opts.mean_session_seconds = 60.0;
  opts.graceful_fraction = 0.0;
  Build(64, opts);  // RingOptions default: durable_data = true
  const uint64_t before = ring_->TotalItems();
  churn_->Start();
  net_->events().RunUntil(300.0);
  EXPECT_EQ(ring_->TotalItems(), before);
}

TEST_F(ChurnTest, RoutingStaysCorrectUnderChurnWithStabilization) {
  ChurnOptions opts;
  opts.mean_session_seconds = 120.0;
  opts.stabilize_interval_seconds = 10.0;
  Build(128, opts);
  churn_->Start();
  Rng rng(3);
  for (int epoch = 0; epoch < 10; ++epoch) {
    net_->events().RunUntil((epoch + 1) * 30.0);
    const auto alive = ring_->AliveAddrs();
    for (int i = 0; i < 20; ++i) {
      const NodeAddr from = alive[rng.UniformU64(alive.size())];
      if (!ring_->IsAlive(from)) continue;
      const RingId target(rng.NextU64());
      Result<NodeAddr> owner = ring_->Lookup(from, target);
      ASSERT_TRUE(owner.ok()) << owner.status().ToString();
      EXPECT_TRUE(ring_->IsAlive(*owner));
    }
  }
}

TEST_F(ChurnTest, WithoutReplacementNetworkShrinks) {
  ChurnOptions opts;
  opts.mean_session_seconds = 30.0;
  opts.maintain_size = false;
  Build(64, opts);
  churn_->Start();
  net_->events().RunUntil(100.0);
  EXPECT_LT(ring_->AliveCount(), 64u);
  EXPECT_GE(ring_->AliveCount(), 2u);  // churn refuses to go below 2
}

TEST_F(ChurnTest, TinyNetworkNeverStalls) {
  ChurnOptions opts;
  opts.mean_session_seconds = 5.0;
  opts.maintain_size = false;
  Build(3, opts);
  churn_->Start();
  net_->events().RunUntil(100.0);
  EXPECT_GE(ring_->AliveCount(), 2u);
  // The event queue must still have future departures scheduled (retries).
  EXPECT_FALSE(net_->events().Empty());
}

}  // namespace
}  // namespace ringdde
