#include "core/dissemination.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/sketch_aggregation.h"
#include "core/wire.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "sim/counters.h"

namespace ringdde {
namespace {

class DisseminationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(256).ok());
    TruncatedNormalDistribution dist(0.5, 0.15);
    Rng rng(1);
    ring_->InsertDatasetBulk(GenerateDataset(dist, 20000, rng).keys);
    DistributionFreeEstimator est(ring_.get(), DdeOptions{});
    auto e = est.Estimate(ring_->AliveAddrs()[0]);
    ASSERT_TRUE(e.ok());
    estimate_ = std::move(*e);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  DensityEstimate estimate_;
};

TEST_F(DisseminationTest, ReachesEveryPeerOnStableRing) {
  EstimateDisseminator diss(ring_.get());
  auto delivered = diss.Broadcast(ring_->AliveAddrs()[0], estimate_);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 256u);
  EXPECT_EQ(diss.holder_count(), 256u);
  for (NodeAddr a : ring_->AliveAddrs()) {
    EXPECT_NE(diss.EstimateAt(a), nullptr);
  }
}

TEST_F(DisseminationTest, CostIsOneMessagePerNonOriginPeer) {
  EstimateDisseminator diss(ring_.get());
  CostScope scope(net_->counters());
  ASSERT_TRUE(diss.Broadcast(ring_->AliveAddrs()[0], estimate_).ok());
  EXPECT_EQ(scope.Delta().messages, 255u);
}

TEST_F(DisseminationTest, DeliveredEstimateMatchesOriginal) {
  EstimateDisseminator diss(ring_.get());
  ASSERT_TRUE(diss.Broadcast(ring_->AliveAddrs()[0], estimate_).ok());
  const DensityEstimate* got = diss.EstimateAt(ring_->AliveAddrs()[99]);
  ASSERT_NE(got, nullptr);
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(got->Cdf(x), estimate_.Cdf(x));
  }
  EXPECT_DOUBLE_EQ(got->estimated_total_items,
                   estimate_.estimated_total_items);
}

TEST_F(DisseminationTest, DeadOriginRejected) {
  const NodeAddr victim = ring_->AliveAddrs()[0];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  EstimateDisseminator diss(ring_.get());
  EXPECT_TRUE(
      diss.Broadcast(victim, estimate_).status().IsInvalidArgument());
}

TEST_F(DisseminationTest, SkipsDeadPeersButCoversTheRest) {
  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(ring_->Crash(*ring_->RandomAliveNode(rng)).ok());
  }
  ring_->StabilizeAll();
  EstimateDisseminator diss(ring_.get());
  auto delivered =
      diss.Broadcast(*ring_->RandomAliveNode(rng), estimate_);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, ring_->AliveCount());
}

TEST_F(DisseminationTest, StaleFingersLoseSomeSubtreesGracefully) {
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(ring_->Crash(*ring_->RandomAliveNode(rng)).ok());
  }
  // No stabilization: stale fingers cut some branches; most peers still
  // get the estimate and nothing crashes or loops.
  EstimateDisseminator diss(ring_.get());
  auto delivered =
      diss.Broadcast(*ring_->RandomAliveNode(rng), estimate_);
  ASSERT_TRUE(delivered.ok());
  EXPECT_GE(*delivered, ring_->AliveCount() / 2);
  EXPECT_LE(*delivered, ring_->AliveCount());
}

// When the estimate carries a sketch, Broadcast ships the compact 0x55
// sketch frame instead of the full CDF knot list: per-edge bytes shrink to
// the sketch's fixed budget, and receivers regenerate the CDF from the
// sketch bit-identically.
TEST_F(DisseminationTest, SketchPayloadShrinksBroadcastBytes) {
  SketchAggregationOptions sopts;
  sopts.sketch_levels = 64;
  SketchAggregator agg(ring_.get(), sopts);
  auto sketch_est = agg.Estimate(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(sketch_est.ok());
  ASSERT_TRUE(sketch_est->sketch.has_value());
  // Sketch-backed frame must be smaller than the dense-CDF frame of the
  // plain m-probe estimate built in SetUp (which has hundreds of knots).
  const size_t sketch_frame = EncodedEstimateSize(*sketch_est);
  const size_t dense_frame = EncodedEstimateSize(estimate_);
  EXPECT_LT(sketch_frame, dense_frame);

  EstimateDisseminator dense(ring_.get());
  CostScope dense_scope(net_->counters());
  ASSERT_TRUE(dense.Broadcast(ring_->AliveAddrs()[0], estimate_).ok());
  const CostCounters dense_cost = dense_scope.Delta();

  EstimateDisseminator compact(ring_.get());
  CostScope compact_scope(net_->counters());
  ASSERT_TRUE(compact.Broadcast(ring_->AliveAddrs()[0], *sketch_est).ok());
  const CostCounters compact_cost = compact_scope.Delta();

  // Same tree, same 255 edges — only the per-edge payload changed, so the
  // byte savings are exactly the frame-size difference per message (the
  // fabric's fixed per-message header overhead cancels out).
  EXPECT_EQ(compact_cost.messages, dense_cost.messages);
  EXPECT_LT(compact_cost.bytes, dense_cost.bytes);
  EXPECT_EQ(dense_cost.bytes - compact_cost.bytes,
            compact_cost.messages * (dense_frame - sketch_frame));

  // Receivers hold the sketch and its bit-identical regenerated CDF.
  const DensityEstimate* got = compact.EstimateAt(ring_->AliveAddrs()[77]);
  ASSERT_NE(got, nullptr);
  ASSERT_TRUE(got->sketch.has_value());
  EXPECT_TRUE(*got->sketch == *sketch_est->sketch);
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(got->Cdf(x), sketch_est->Cdf(x));
  }
}

TEST_F(DisseminationTest, ClearDropsState) {
  EstimateDisseminator diss(ring_.get());
  ASSERT_TRUE(diss.Broadcast(ring_->AliveAddrs()[0], estimate_).ok());
  diss.Clear();
  EXPECT_EQ(diss.holder_count(), 0u);
  EXPECT_EQ(diss.EstimateAt(ring_->AliveAddrs()[0]), nullptr);
}

}  // namespace
}  // namespace ringdde
