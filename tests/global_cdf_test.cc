#include "core/global_cdf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ringdde {
namespace {

/// Hand-builds a summary for the arc (lo, hi] holding `keys`.
LocalSummary MakeSummary(NodeAddr addr, double lo, double hi,
                         std::vector<double> keys, int num_quantiles = 8) {
  Node node(addr, RingId::FromUnit(hi));
  node.set_predecessor(NodeEntry{addr + 1000, RingId::FromUnit(lo)});
  node.InsertKeys(keys);
  return ComputeLocalSummary(node, num_quantiles);
}

TEST(ReconstructTest, EmptyInputRejected) {
  EXPECT_FALSE(ReconstructGlobalCdf({}).ok());
}

TEST(ReconstructTest, FullCoverageUniformDataIsExact) {
  // Four peers tile [0,1) with uniform data: reconstruction must be the
  // uniform CDF and the exact total.
  std::vector<LocalSummary> ss;
  int addr = 1;
  for (double lo = 0.0; lo < 0.99; lo += 0.25) {
    std::vector<double> keys;
    for (int i = 0; i < 100; ++i) keys.push_back(lo + 0.25 * (i + 0.5) / 100);
    ss.push_back(MakeSummary(addr++, lo, lo + 0.25, keys));
  }
  auto r = ReconstructGlobalCdf(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimated_total, 400.0, 1e-6);
  EXPECT_NEAR(r->covered_fraction, 1.0, 1e-9);
  EXPECT_EQ(r->segment_count, 4u);
  for (double x : {0.1, 0.35, 0.5, 0.77, 0.95}) {
    EXPECT_NEAR(r->cdf.Evaluate(x), x, 0.02) << "x=" << x;
  }
}

TEST(ReconstructTest, GapFilledFromNeighborDensities) {
  // Two probed arcs at densities 100 and 300 items/unit around an unprobed
  // middle gap: neighbor interpolation fills the gap at density 200.
  std::vector<double> left_keys, right_keys;
  for (int i = 0; i < 20; ++i) left_keys.push_back(0.0 + 0.2 * (i + 0.5) / 20);
  for (int i = 0; i < 60; ++i) right_keys.push_back(0.8 + 0.2 * (i + 0.5) / 60);
  std::vector<LocalSummary> ss{MakeSummary(1, 0.0, 0.2, left_keys),
                               MakeSummary(2, 0.8, 1.0, right_keys)};
  ReconstructionOptions opts;
  opts.gap_fill = GapFillPolicy::kNeighborInterpolation;
  auto r = ReconstructGlobalCdf(ss, opts);
  ASSERT_TRUE(r.ok());
  // total = 20 + 60 + 0.6 * (100+300)/2 = 200.
  EXPECT_NEAR(r->estimated_total, 200.0, 1e-6);
}

TEST(ReconstructTest, GlobalMeanGapFill) {
  std::vector<double> keys;
  for (int i = 0; i < 50; ++i) keys.push_back(0.4 + 0.2 * (i + 0.5) / 50);
  std::vector<LocalSummary> ss{MakeSummary(1, 0.4, 0.6, keys)};
  ReconstructionOptions opts;
  opts.gap_fill = GapFillPolicy::kGlobalMean;
  auto r = ReconstructGlobalCdf(ss, opts);
  ASSERT_TRUE(r.ok());
  // Global density 250/unit spread everywhere: total = 250.
  EXPECT_NEAR(r->estimated_total, 250.0, 1e-6);
  EXPECT_NEAR(r->covered_fraction, 0.2, 1e-9);
}

TEST(ReconstructTest, ZeroGapFillCountsOnlyProbedMass) {
  std::vector<double> keys;
  for (int i = 0; i < 50; ++i) keys.push_back(0.4 + 0.2 * (i + 0.5) / 50);
  std::vector<LocalSummary> ss{MakeSummary(1, 0.4, 0.6, keys)};
  ReconstructionOptions opts;
  opts.gap_fill = GapFillPolicy::kZero;
  auto r = ReconstructGlobalCdf(ss, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimated_total, 50.0, 1e-6);
}

TEST(ReconstructTest, CdfIsAlwaysMonotoneNormalized) {
  std::vector<LocalSummary> ss{
      MakeSummary(1, 0.1, 0.3, {0.15, 0.2, 0.25}),
      MakeSummary(2, 0.5, 0.7, {0.55, 0.6}),
  };
  auto r = ReconstructGlobalCdf(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cdf.IsNormalized());
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double f = r->cdf.Evaluate(i / 200.0);
    EXPECT_GE(f, prev - 1e-12);
    prev = f;
  }
}

TEST(ReconstructTest, WrappedArcSplitsAcrossBoundary) {
  // One peer owns (0.9, 0.1]: keys on both sides of the wrap.
  std::vector<double> keys{0.92, 0.95, 0.98, 0.02, 0.05};
  std::vector<LocalSummary> ss{MakeSummary(1, 0.9, 0.1, keys)};
  ReconstructionOptions opts;
  opts.gap_fill = GapFillPolicy::kZero;
  auto r = ReconstructGlobalCdf(ss, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimated_total, 5.0, 0.5);
  EXPECT_NEAR(r->covered_fraction, 0.2, 1e-6);
  // 2 of 5 keys lie below 0.1; the quantile interpolation of the split is
  // coarse (8 knots over 5 keys), so allow a wide band around 0.4.
  const double f_low = r->cdf.Evaluate(0.1);
  EXPECT_GT(f_low, 0.1);
  EXPECT_LT(f_low, 0.7);
  // The arc's two halves bracket an empty middle: F is flat across it.
  EXPECT_NEAR(r->cdf.Evaluate(0.89), f_low, 1e-9);
  EXPECT_NEAR(r->cdf.Evaluate(0.999), 1.0, 0.01);
}

TEST(ReconstructTest, AllEmptyPeersYieldUniformFallback) {
  std::vector<LocalSummary> ss{MakeSummary(1, 0.0, 0.5, {}),
                               MakeSummary(2, 0.5, 1.0, {})};
  auto r = ReconstructGlobalCdf(ss);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->estimated_total, 0.0);
  EXPECT_NEAR(r->cdf.Evaluate(0.3), 0.3, 1e-9);
}

TEST(ReconstructTest, QuantileKnotsShapeWithinArc) {
  // One arc covering everything with all mass bunched at [0.4, 0.5].
  std::vector<double> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(0.4 + 0.1 * (i + 0.5) / 200);
  std::vector<LocalSummary> ss{MakeSummary(1, 0.0, 1.0, keys, 16)};
  ReconstructionOptions with_knots;
  with_knots.use_quantile_knots = true;
  auto shaped = ReconstructGlobalCdf(ss, with_knots);
  ASSERT_TRUE(shaped.ok());
  // With shape knots the CDF jumps across [0.4, 0.5].
  EXPECT_LT(shaped->cdf.Evaluate(0.39), 0.1);
  EXPECT_GT(shaped->cdf.Evaluate(0.51), 0.9);

  ReconstructionOptions no_knots;
  no_knots.use_quantile_knots = false;
  auto flat = ReconstructGlobalCdf(ss, no_knots);
  ASSERT_TRUE(flat.ok());
  // Without them the arc is one linear ramp: F(0.39) ~ 0.39.
  EXPECT_NEAR(flat->cdf.Evaluate(0.39), 0.39, 0.02);
}

TEST(ReconstructTest, OverlappingStaleArcsAreClipped) {
  // Two summaries claim overlapping arcs (stale predecessor pointers).
  std::vector<double> k1, k2;
  for (int i = 0; i < 40; ++i) k1.push_back(0.2 + 0.2 * (i + 0.5) / 40);
  for (int i = 0; i < 40; ++i) k2.push_back(0.3 + 0.2 * (i + 0.5) / 40);
  std::vector<LocalSummary> ss{MakeSummary(1, 0.2, 0.4, k1),
                               MakeSummary(2, 0.3, 0.5, k2)};
  ReconstructionOptions opts;
  opts.gap_fill = GapFillPolicy::kZero;
  auto r = ReconstructGlobalCdf(ss, opts);
  ASSERT_TRUE(r.ok());
  // Coverage is the union [0.2, 0.5], not the sum of widths.
  EXPECT_NEAR(r->covered_fraction, 0.3, 1e-6);
  // Second arc's overlap half is clipped: total = 40 + ~20.
  EXPECT_NEAR(r->estimated_total, 60.0, 4.0);
}

TEST(ReconstructTest, SingleNodeFullRing) {
  std::vector<double> keys{0.1, 0.5, 0.9};
  Node node(1, RingId::FromUnit(0.3));
  node.set_predecessor(NodeEntry{1, RingId::FromUnit(0.3)});  // self = all
  node.InsertKeys(keys);
  const LocalSummary s = ComputeLocalSummary(node, 4);
  auto r = ReconstructGlobalCdf({s});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->estimated_total, 3.0, 1e-9);
  EXPECT_NEAR(r->covered_fraction, 1.0, 1e-9);
}

}  // namespace
}  // namespace ringdde
