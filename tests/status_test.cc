#include "common/status.h"

#include <gtest/gtest.h>

namespace ringdde {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_FALSE(Status::Internal("x").IsNotFound());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(3);
  EXPECT_EQ(r.value_or(-1), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r->push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto inner = []() { return Status::TimedOut("slow"); };
  auto outer = [&]() -> Status {
    RINGDDE_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsTimedOut());
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto inner = []() { return Status::OK(); };
  auto outer = [&]() -> Status {
    RINGDDE_RETURN_IF_ERROR(inner());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ringdde
