// Failure injection: the lossy-channel model and the protocols on top.
#include <gtest/gtest.h>

#include <memory>

#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/chord_ring.h"
#include "sim/network.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

TEST(LossyNetworkTest, ZeroLossIsOneAttemptPerSend) {
  Network net;
  for (int i = 0; i < 100; ++i) net.Send(1, 2, 8);
  EXPECT_EQ(net.counters().messages, 100u);
  EXPECT_EQ(net.lost_messages(), 0u);
}

TEST(LossyNetworkTest, RetransmissionsTrackLossRate) {
  NetworkOptions opts;
  opts.loss_probability = 0.5;
  Network net(opts);
  const int kSends = 20000;
  for (int i = 0; i < kSends; ++i) net.Send(1, 2, 8);
  // Geometric attempts with p=0.5: mean 2 attempts per logical send.
  const double attempts_per_send =
      static_cast<double>(net.counters().messages) / kSends;
  EXPECT_NEAR(attempts_per_send, 2.0, 0.1);
  EXPECT_NEAR(static_cast<double>(net.lost_messages()),
              static_cast<double>(net.counters().messages - kSends), 1e-9);
}

TEST(LossyNetworkTest, LossAddsTimeoutLatency) {
  NetworkOptions opts;
  opts.loss_probability = 0.5;
  opts.retransmit_timeout_seconds = 1.0;
  opts.latency = std::make_shared<ConstantLatency>(0.01);
  Network net(opts);
  double total = 0.0;
  for (int i = 0; i < 5000; ++i) total += net.Send(1, 2, 8);
  // Mean delivery latency = 0.01 + E[#losses] * 1.0 = 0.01 + 1.0.
  EXPECT_NEAR(total / 5000.0, 1.01, 0.15);
}

TEST(LossyNetworkTest, CertainLossIsClampedNotInfinite) {
  NetworkOptions opts;
  opts.loss_probability = 1.0;  // clamped to 0.99 internally
  Network net(opts);
  const double latency = net.Send(1, 2, 8);  // must terminate
  EXPECT_GT(latency, 0.0);
}

TEST(LossyNetworkTest, EstimationSurvivesHeavyLoss) {
  NetworkOptions nopts;
  nopts.loss_probability = 0.2;
  Network net(nopts);
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(512).ok());
  TruncatedNormalDistribution dist(0.5, 0.15);
  Rng rng(1);
  ring.InsertDatasetBulk(GenerateDataset(dist, 50000, rng).keys);

  DdeOptions opts;
  opts.num_probes = 192;
  DistributionFreeEstimator est(&ring, opts);
  auto e = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  // Accuracy is untouched (reliable delivery), only cost inflates ~1/(1-p).
  EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.05);
  EXPECT_GT(net.lost_messages(), 0u);
}

TEST(LossyNetworkTest, CostInflatesByLossFactor) {
  uint64_t msgs[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    NetworkOptions nopts;
    nopts.loss_probability = mode == 0 ? 0.0 : 0.25;
    nopts.seed = 9;
    Network net(nopts);
    ChordRing ring(&net);
    ASSERT_TRUE(ring.CreateNetwork(256).ok());
    Rng rng(2);
    UniformDistribution dist;
    ring.InsertDatasetBulk(GenerateDataset(dist, 20000, rng).keys);
    DdeOptions opts;
    opts.num_probes = 128;
    DistributionFreeEstimator est(&ring, opts);
    auto e = est.Estimate(ring.AliveAddrs()[0]);
    ASSERT_TRUE(e.ok());
    msgs[mode] = e->cost.messages;
  }
  // Expected inflation 1/(1-0.25) = 1.33x.
  const double ratio =
      static_cast<double>(msgs[1]) / static_cast<double>(msgs[0]);
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace ringdde
