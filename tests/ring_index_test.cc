// Struct-of-arrays ring-core regression tests: RingIndex must behave
// exactly like the std::map ground truth it replaced (owner search, rank
// selection, iteration order, flat snapshots, segment-granular cache
// invalidation), and every hot path rewritten against it — StabilizeAll,
// Lookup, bulk dataset loads, full estimation runs, fault-injected runs —
// must produce routing state and estimates byte-identical to the legacy
// map-layout formulation at 1, 4, and 16 threads, on churned rings
// carrying dead nodes. Part of the ctest "concurrency" label: configure
// with RINGDDE_SANITIZE=thread for race coverage of the parallel sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ring/chord_ring.h"
#include "ring/finger_table.h"
#include "ring/node.h"
#include "ring/reference_stabilize.h"
#include "ring/ring_index.h"
#include "sim/fault_injector.h"
#include "sim/network.h"

namespace ringdde {
namespace {

using bench::Env;
using bench::RepeatDde;
using bench::RepeatedResult;

// ---------------------------------------------------------------------------
// RingIndex vs a std::map model.

TEST(RingIndexTest, MatchesStdMapUnderRandomChurn) {
  RingIndex index;
  std::map<uint64_t, NodeAddr> model;
  Rng rng(2024);

  const auto check_equivalent = [&] {
    ASSERT_EQ(index.size(), model.size());
    // Iteration order and flat snapshot equal the ascending map walk.
    const RingIndex::FlatView flat = index.Flat();
    ASSERT_EQ(flat.size, model.size());
    size_t rank = 0;
    for (const auto& [id, addr] : model) {
      EXPECT_EQ(flat.ids[rank], id);
      EXPECT_EQ(flat.addrs[rank], addr);
      const RingIndex::Entry e = index.AtRank(rank);
      EXPECT_EQ(e.id, id);
      EXPECT_EQ(e.addr, addr);
      ++rank;
    }
    size_t fe_rank = 0;
    index.ForEach([&](uint64_t id, NodeAddr addr) {
      EXPECT_EQ(id, flat.ids[fe_rank]);
      EXPECT_EQ(addr, flat.addrs[fe_rank]);
      ++fe_rank;
    });
    EXPECT_EQ(fe_rank, model.size());
    // Owner search = lower_bound with wrap; rank searches = map distances.
    for (int probe = 0; probe < 64; ++probe) {
      const uint64_t target = rng.NextU64();
      auto it = model.lower_bound(target);
      const size_t lb = static_cast<size_t>(
          std::distance(model.begin(), it));
      EXPECT_EQ(index.LowerBoundRank(target), lb);
      EXPECT_EQ(index.UpperBoundRank(target),
                static_cast<size_t>(
                    std::distance(model.begin(), model.upper_bound(target))));
      if (it == model.end()) it = model.begin();
      const auto owner = index.OwnerOf(target);
      if (model.empty()) {
        EXPECT_FALSE(owner.has_value());
      } else {
        ASSERT_TRUE(owner.has_value());
        EXPECT_EQ(owner->id, it->first);
        EXPECT_EQ(owner->addr, it->second);
      }
    }
  };

  NodeAddr next_addr = 1;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 200; ++i) {
      const uint64_t id = rng.NextU64();
      if (model.emplace(id, next_addr).second) {
        index.Insert(id, next_addr);
        ++next_addr;
      }
    }
    // Erase a random third of the population.
    std::vector<uint64_t> ids;
    ids.reserve(model.size());
    for (const auto& [id, addr] : model) ids.push_back(id);
    for (size_t i = 0; i < ids.size() / 3; ++i) {
      const uint64_t victim = ids[rng.UniformU64(ids.size())];
      EXPECT_EQ(index.Erase(victim), model.erase(victim) > 0);
      EXPECT_FALSE(index.Contains(victim));
    }
    check_equivalent();
  }
}

TEST(RingIndexTest, SegmentGranularInvalidation) {
  // Ids pinned to known segments: shard = id >> 56.
  const auto in_shard = [](uint64_t shard, uint64_t low) {
    return (shard << 56) | low;
  };
  RingIndex index;
  for (uint64_t s : {0ull, 3ull, 128ull, 255ull}) {
    index.Insert(in_shard(s, 10), static_cast<NodeAddr>(s + 1));
    index.Insert(in_shard(s, 20), static_cast<NodeAddr>(s + 100));
  }

  index.Flat();
  const RingIndex::CacheStats s0 = index.cache_stats();
  EXPECT_EQ(s0.flat_rebuilds, 1u);
  EXPECT_EQ(s0.flat_full_rebuilds, 1u);
  EXPECT_EQ(s0.flat_shards_copied, 4u);  // only non-empty shards copy

  // Clean cache: repeated reads are hits, no copying.
  index.Flat();
  index.FlatAddrs();
  const RingIndex::CacheStats s1 = index.cache_stats();
  EXPECT_EQ(s1.flat_hits, s0.flat_hits + 2);
  EXPECT_EQ(s1.flat_rebuilds, 1u);

  // Dirtying the LAST shard re-copies only that shard's span.
  index.Insert(in_shard(255, 30), 999);
  index.Flat();
  const RingIndex::CacheStats s2 = index.cache_stats();
  EXPECT_EQ(s2.flat_rebuilds, 2u);
  EXPECT_EQ(s2.flat_full_rebuilds, 1u);  // NOT a full rebuild
  EXPECT_EQ(s2.flat_shards_copied, s1.flat_shards_copied + 1);

  // Dirtying shard 0 degrades to the full re-copy (the old behavior,
  // now the worst case instead of the only case).
  index.Insert(in_shard(0, 30), 998);
  index.Flat();
  const RingIndex::CacheStats s3 = index.cache_stats();
  EXPECT_EQ(s3.flat_full_rebuilds, 2u);
  EXPECT_EQ(s3.flat_shards_copied, s2.flat_shards_copied + 4);

  // Rank access never needs the flat snapshot: dirty the index, then
  // AtRank — no rebuild happens until the next Flat().
  index.Insert(in_shard(128, 30), 997);
  EXPECT_EQ(index.AtRank(2).addr, 998u);  // shard-0 entries: 10, 20, 30
  const RingIndex::CacheStats s4 = index.cache_stats();
  EXPECT_EQ(s4.flat_rebuilds, s3.flat_rebuilds);
  EXPECT_EQ(s4.shard_invalidations, 11u);  // one per Insert/Erase
}

// ---------------------------------------------------------------------------
// Byte-identity of the rewritten hot paths vs the legacy map layout.

struct NodeRouting {
  bool alive = false;
  std::vector<NodeEntry> successors;
  NodeEntry predecessor;
  std::vector<std::optional<NodeEntry>> fingers;

  bool operator==(const NodeRouting&) const = default;
};

struct Deployment {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  NodeAddr max_addr = 0;
};

/// Deterministic churned ring: crashes and graceful leaves interleaved
/// with joins, leaving dead nodes and not-yet-stabilized neighbors.
Deployment BuildChurnedRing(size_t peers, uint64_t ring_seed) {
  Deployment d;
  d.net = std::make_unique<Network>();
  RingOptions opts;
  opts.seed = ring_seed;
  d.ring = std::make_unique<ChordRing>(d.net.get(), opts);
  EXPECT_TRUE(d.ring->CreateNetwork(peers).ok());
  d.max_addr = peers;

  Rng churn(171717);
  for (int i = 0; i < 20; ++i) {
    const auto alive = d.ring->AliveAddrs();
    if (churn.Bernoulli(0.5)) {
      EXPECT_TRUE(d.ring->Crash(alive[churn.UniformU64(alive.size())]).ok());
    } else {
      EXPECT_TRUE(d.ring->Leave(alive[churn.UniformU64(alive.size())]).ok());
    }
    if (i % 2 == 0) {
      const auto alive2 = d.ring->AliveAddrs();
      auto added = d.ring->Join(alive2[churn.UniformU64(alive2.size())]);
      EXPECT_TRUE(added.ok());
      d.max_addr = std::max(d.max_addr, *added);
    }
  }
  return d;
}

std::map<NodeAddr, NodeRouting> CaptureRouting(const Deployment& d) {
  std::map<NodeAddr, NodeRouting> out;
  for (NodeAddr a = 1; a <= d.max_addr; ++a) {
    const Node* node = d.ring->GetNode(a);
    if (node == nullptr) {
      ADD_FAILURE() << "missing node at addr " << a;
      continue;
    }
    NodeRouting r;
    r.alive = node->alive();
    r.successors = node->successors();
    r.predecessor = node->predecessor();
    r.fingers.reserve(FingerTable::kBits);
    for (int k = 0; k < FingerTable::kBits; ++k) {
      r.fingers.push_back(node->fingers().Get(k));
    }
    out[a] = std::move(r);
  }
  return out;
}

void ExpectSameRouting(const std::map<NodeAddr, NodeRouting>& got,
                       const std::map<NodeAddr, NodeRouting>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [addr, want_r] : want) {
    const auto it = got.find(addr);
    ASSERT_NE(it, got.end()) << "addr " << addr;
    EXPECT_EQ(it->second, want_r) << "routing state differs at addr " << addr;
  }
}

class SoaIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SoaIdentityTest, StabilizeAllMatchesLegacyMapWalk) {
  const size_t workers = GetParam();
  const size_t peers = 600;  // > one 512-node chunk after churn
  const uint64_t seed = 29;

  // Reference: the independent per-node map-walk formulation over the
  // legacy layout (no code shared with the struct-of-arrays sweep).
  Deployment legacy = BuildChurnedRing(peers, seed);
  const LegacyMembership mirror = MirrorMembership(*legacy.ring);
  ReferenceStabilizeAllMapWalk(mirror,
                               legacy.ring->options().successor_list_size);
  const auto want = CaptureRouting(legacy);

  Deployment soa = BuildChurnedRing(peers, seed);
  ThreadPool pool(workers);
  soa.ring->StabilizeAll(&pool);
  ExpectSameRouting(CaptureRouting(soa), want);
}

TEST_P(SoaIdentityTest, LookupsMatchAcrossLayoutsAfterStabilize) {
  const size_t workers = GetParam();
  const uint64_t seed = 31;

  Deployment legacy = BuildChurnedRing(400, seed);
  const LegacyMembership mirror = MirrorMembership(*legacy.ring);
  ReferenceStabilizeAllMapWalk(mirror,
                               legacy.ring->options().successor_list_size);

  Deployment soa = BuildChurnedRing(400, seed);
  ThreadPool pool(workers);
  soa.ring->StabilizeAll(&pool);
  soa.ring->PrepareConcurrentReads();
  legacy.ring->PrepareConcurrentReads();

  Rng qrng(555);
  for (int q = 0; q < 200; ++q) {
    const Result<NodeAddr> from_a = soa.ring->RandomAliveNode(qrng);
    ASSERT_TRUE(from_a.ok());
    const RingId target(qrng.NextU64());
    CostContext ctx_a = soa.net->MakeQueryContext(static_cast<uint64_t>(q));
    CostContext ctx_b = legacy.net->MakeQueryContext(static_cast<uint64_t>(q));
    const Result<NodeAddr> owner_a = soa.ring->Lookup(ctx_a, *from_a, target);
    const Result<NodeAddr> owner_b =
        legacy.ring->Lookup(ctx_b, *from_a, target);
    ASSERT_EQ(owner_a.ok(), owner_b.ok()) << "query " << q;
    if (owner_a.ok()) EXPECT_EQ(*owner_a, *owner_b) << "query " << q;
    EXPECT_EQ(ctx_a.counters.hops, ctx_b.counters.hops) << "query " << q;
    EXPECT_EQ(ctx_a.counters.messages, ctx_b.counters.messages)
        << "query " << q;
    EXPECT_EQ(ctx_a.counters.bytes, ctx_b.counters.bytes) << "query " << q;
  }
}

// Worker counts 0/3/15 = thread counts 1/4/16 (the caller participates).
INSTANTIATE_TEST_SUITE_P(ThreadCounts, SoaIdentityTest,
                         ::testing::Values<size_t>(0, 3, 15));

// ---------------------------------------------------------------------------
// Bulk dataset loads.

std::vector<double> MakeKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> keys(count);
  for (double& k : keys) k = rng.UniformDouble();
  return keys;
}

void ExpectSameStores(const Deployment& a, const Deployment& b) {
  ASSERT_EQ(a.max_addr, b.max_addr);
  for (NodeAddr addr = 1; addr <= a.max_addr; ++addr) {
    const Node* na = a.ring->GetNode(addr);
    const Node* nb = b.ring->GetNode(addr);
    ASSERT_NE(na, nullptr);
    ASSERT_NE(nb, nullptr);
    EXPECT_EQ(na->keys(), nb->keys()) << "store differs at addr " << addr;
  }
}

Deployment BuildPlainRing(size_t peers, uint64_t seed) {
  Deployment d;
  d.net = std::make_unique<Network>();
  RingOptions opts;
  opts.seed = seed;
  d.ring = std::make_unique<ChordRing>(d.net.get(), opts);
  EXPECT_TRUE(d.ring->CreateNetwork(peers).ok());
  d.max_addr = peers;
  return d;
}

TEST(InsertDatasetBulkTest, MatchesPerKeyInsertAtEveryThreadCount) {
  const std::vector<double> keys = MakeKeys(5000, 808);

  Deployment per_key = BuildPlainRing(300, 7);
  for (double k : keys) ASSERT_TRUE(per_key.ring->InsertKeyBulk(k).ok());

  for (size_t workers : {0u, 3u, 15u}) {
    Deployment bulk = BuildPlainRing(300, 7);
    ThreadPool pool(workers);
    bulk.ring->InsertDatasetBulk(keys, &pool);
    ExpectSameStores(bulk, per_key);
    EXPECT_EQ(bulk.ring->TotalItems(), keys.size());
  }
}

TEST(InsertDatasetBulkTest, OutOfRangeKeysTakeTheWrapFallback) {
  // Keys outside [0,1) reduce mod 1 on the ring, which breaks the sorted
  // merge-sweep's monotonicity; the bulk loader must detect this and fall
  // back to the cursor sweep, matching per-key placement exactly.
  std::vector<double> keys = MakeKeys(500, 909);
  keys.push_back(1.25);   // wraps to 0.25
  keys.push_back(2.75);   // wraps to 0.75
  keys.push_back(-0.25);  // wraps to 0.75
  keys.push_back(0.999999);

  Deployment per_key = BuildPlainRing(64, 9);
  for (double k : keys) ASSERT_TRUE(per_key.ring->InsertKeyBulk(k).ok());

  Deployment bulk = BuildPlainRing(64, 9);
  bulk.ring->InsertDatasetBulk(keys);
  ExpectSameStores(bulk, per_key);
}

// ---------------------------------------------------------------------------
// End-to-end estimates across layouts (fault-free and fault-injected).

void ExpectSameResult(const RepeatedResult& a, const RepeatedResult& b,
                      const char* what) {
  EXPECT_EQ(a.accuracy.ks, b.accuracy.ks) << what;
  EXPECT_EQ(a.accuracy.l1_cdf, b.accuracy.l1_cdf) << what;
  EXPECT_EQ(a.accuracy.l2_cdf, b.accuracy.l2_cdf) << what;
  EXPECT_EQ(a.accuracy.l1_pdf, b.accuracy.l1_pdf) << what;
  EXPECT_EQ(a.mean_messages, b.mean_messages) << what;
  EXPECT_EQ(a.mean_hops, b.mean_hops) << what;
  EXPECT_EQ(a.mean_bytes, b.mean_bytes) << what;
  EXPECT_EQ(a.mean_total_error, b.mean_total_error) << what;
  EXPECT_EQ(a.mean_peers, b.mean_peers) << what;
}

std::unique_ptr<Env> BuildEstimateEnv(const FaultOptions* faults) {
  auto env = std::make_unique<Env>();
  NetworkOptions nopts;
  if (faults != nullptr) {
    nopts.faults = std::make_shared<FaultInjector>(*faults);
  }
  env->net = std::make_unique<Network>(nopts);
  RingOptions ropts;
  ropts.seed = 83;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  EXPECT_TRUE(env->ring->CreateNetwork(128).ok());
  env->dist = std::make_unique<UniformDistribution>();
  env->items = 6000;
  env->peers = 128;
  env->seed = 83;
  Rng rng(83 ^ 0xDA7A);
  env->ring->InsertDatasetBulk(
      GenerateDataset(*env->dist, env->items, rng).keys);
  return env;
}

void RunEstimateIdentity(const FaultOptions* faults, const char* what) {
  DdeOptions opts;
  opts.num_probes = 48;
  if (faults != nullptr) opts.retry.max_attempts = 3;
  constexpr int kReps = 4;
  constexpr uint64_t kSeedBase = 6100;

  // Legacy layout path: converge via the map-walk reference.
  auto env_legacy = BuildEstimateEnv(faults);
  const LegacyMembership mirror = MirrorMembership(*env_legacy->ring);
  ReferenceStabilizeAllMapWalk(mirror,
                               env_legacy->ring->options().successor_list_size);
  env_legacy->ring->PrepareConcurrentReads();
  ThreadPool serial(0);
  const RepeatedResult want =
      RepeatDde(*env_legacy, opts, kReps, kSeedBase, &serial);

  // SoA path: converge via the parallel struct-of-arrays sweep at 1/4/16
  // threads; every estimate must be bitwise equal to the legacy run.
  for (size_t workers : {0u, 3u, 15u}) {
    auto env = BuildEstimateEnv(faults);
    ThreadPool pool(workers);
    env->ring->StabilizeAll(&pool);
    env->ring->PrepareConcurrentReads();
    const RepeatedResult got = RepeatDde(*env, opts, kReps, kSeedBase, &pool);
    ExpectSameResult(got, want, what);
  }
}

TEST(SoaEstimateTest, EstimatesMatchLegacyLayout) {
  RunEstimateIdentity(nullptr, "fault-free");
}

TEST(SoaEstimateTest, FaultInjectedEstimatesMatchLegacyLayout) {
  FaultOptions faults;
  faults.drop_probability = 0.05;
  faults.seed = 0xE18;
  RunEstimateIdentity(&faults, "fault-injected");
}

}  // namespace
}  // namespace ringdde
