#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ringdde {
namespace {

TEST(EcdfTest, StepFunctionValues) {
  EmpiricalCdf ecdf({0.2, 0.4, 0.6, 0.8});
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.1), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.2), 0.25);  // right-continuous
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.8), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(2.0), 1.0);
}

TEST(EcdfTest, SortsInput) {
  EmpiricalCdf ecdf({0.9, 0.1, 0.5});
  const auto& s = ecdf.sorted_samples();
  EXPECT_DOUBLE_EQ(s[0], 0.1);
  EXPECT_DOUBLE_EQ(s[2], 0.9);
}

TEST(EcdfTest, DuplicatesJumpTogether) {
  EmpiricalCdf ecdf({0.5, 0.5, 0.5, 0.9});
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.49), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.5), 0.75);
}

TEST(EcdfTest, QuantileSmallestSampleReachingP) {
  EmpiricalCdf ecdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.26), 2.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(ecdf.Quantile(1.0), 4.0);
}

TEST(EcdfTest, QuantileEvaluateConsistency) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.UniformDouble());
  EmpiricalCdf ecdf(xs);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_GE(ecdf.Evaluate(ecdf.Quantile(p)), p);
  }
}

TEST(EcdfTest, SizeReported) {
  EmpiricalCdf ecdf({1.0, 2.0});
  EXPECT_EQ(ecdf.size(), 2u);
}

TEST(EcdfTest, ToPiecewiseLinearAgreesAtSamplePoints) {
  EmpiricalCdf ecdf({0.2, 0.4, 0.6, 0.8});
  auto pwl = ecdf.ToPiecewiseLinear();
  ASSERT_TRUE(pwl.ok());
  for (double x : {0.2, 0.4, 0.6, 0.8}) {
    EXPECT_NEAR(pwl->Evaluate(x), ecdf.Evaluate(x), 1e-9);
  }
}

TEST(EcdfTest, ConvergesToTruthDkw) {
  Rng rng(2);
  std::vector<double> xs;
  const int n = 50000;
  for (int i = 0; i < n; ++i) xs.push_back(rng.UniformDouble());
  EmpiricalCdf ecdf(xs);
  double ks = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double x = i / 1000.0;
    ks = std::max(ks, std::fabs(ecdf.Evaluate(x) - x));
  }
  EXPECT_LT(ks, 0.012);  // DKW at n=50000, delta ~ 1e-6
}

}  // namespace
}  // namespace ringdde
