// StabilizeAll determinism: the snapshot-based chunked sweep must produce
// routing state byte-identical to the legacy per-node StabilizeNode path,
// at every thread count, including on rings carrying dead nodes and fresh
// joins that have not been stabilized yet.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ring/chord_ring.h"
#include "ring/finger_table.h"
#include "ring/node.h"
#include "sim/network.h"

namespace ringdde {
namespace {

/// Everything StabilizeNode is allowed to touch, for every node ever
/// created (dead nodes must stay bit-for-bit untouched).
struct NodeRouting {
  bool alive = false;
  std::vector<NodeEntry> successors;
  NodeEntry predecessor;
  std::vector<std::optional<NodeEntry>> fingers;

  bool operator==(const NodeRouting&) const = default;
};

struct Deployment {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
  NodeAddr max_addr = 0;
};

/// Builds a ring and churns it with a deterministic op sequence: every call
/// with the same parameters yields bit-identical membership and (stale)
/// routing state. `peers` > 512 exercises the multi-chunk sweep path.
Deployment BuildChurnedRing(size_t peers, uint64_t ring_seed) {
  Deployment d;
  d.net = std::make_unique<Network>();
  RingOptions opts;
  opts.seed = ring_seed;
  d.ring = std::make_unique<ChordRing>(d.net.get(), opts);
  EXPECT_TRUE(d.ring->CreateNetwork(peers).ok());
  d.max_addr = peers;

  Rng churn(424242);
  // Crashes first: dead nodes whose neighbors have not re-stabilized.
  for (int i = 0; i < 12; ++i) {
    const auto alive = d.ring->AliveAddrs();
    EXPECT_TRUE(d.ring->Crash(alive[churn.UniformU64(alive.size())]).ok());
  }
  for (int i = 0; i < 8; ++i) {
    const auto alive = d.ring->AliveAddrs();
    EXPECT_TRUE(d.ring->Leave(alive[churn.UniformU64(alive.size())]).ok());
  }
  for (int i = 0; i < 10; ++i) {
    const auto alive = d.ring->AliveAddrs();
    auto added = d.ring->Join(alive[churn.UniformU64(alive.size())]);
    EXPECT_TRUE(added.ok());
    d.max_addr = std::max(d.max_addr, *added);
  }
  return d;
}

std::map<NodeAddr, NodeRouting> CaptureRouting(const Deployment& d) {
  std::map<NodeAddr, NodeRouting> out;
  for (NodeAddr a = 1; a <= d.max_addr; ++a) {
    const Node* node = d.ring->GetNode(a);
    if (node == nullptr) {
      ADD_FAILURE() << "missing node at addr " << a;
      continue;
    }
    NodeRouting r;
    r.alive = node->alive();
    r.successors = node->successors();
    r.predecessor = node->predecessor();
    r.fingers.reserve(FingerTable::kBits);
    for (int k = 0; k < FingerTable::kBits; ++k) {
      r.fingers.push_back(node->fingers().Get(k));
    }
    out[a] = std::move(r);
  }
  return out;
}

void ExpectSameRouting(const std::map<NodeAddr, NodeRouting>& got,
                       const std::map<NodeAddr, NodeRouting>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [addr, want_r] : want) {
    const auto it = got.find(addr);
    ASSERT_NE(it, got.end()) << "addr " << addr;
    EXPECT_EQ(it->second, want_r) << "routing state differs at addr " << addr;
  }
}

class StabilizeParallelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StabilizeParallelTest, MatchesLegacySerialSweep) {
  const size_t workers = GetParam();
  const size_t peers = 600;  // > one 512-node chunk after churn
  const uint64_t seed = 11;

  // Reference: the legacy incremental path, one StabilizeNode per alive
  // node against the same churned membership.
  Deployment legacy = BuildChurnedRing(peers, seed);
  for (NodeAddr a : legacy.ring->AliveAddrs()) legacy.ring->StabilizeNode(a);
  const auto want = CaptureRouting(legacy);

  Deployment snap = BuildChurnedRing(peers, seed);
  ThreadPool pool(workers);
  snap.ring->StabilizeAll(&pool);
  const auto got = CaptureRouting(snap);

  ExpectSameRouting(got, want);
}

// Worker counts 0/3/15 = thread counts 1/4/16 (the caller participates).
INSTANTIATE_TEST_SUITE_P(ThreadCounts, StabilizeParallelTest,
                         ::testing::Values<size_t>(0, 3, 15));

TEST(StabilizeAllTest, TinyRingsMatchLegacy) {
  for (size_t n : {1u, 2u, 3u, 9u}) {
    Network net_a, net_b;
    RingOptions opts;
    opts.seed = 5;
    ChordRing a(&net_a, opts);
    ChordRing b(&net_b, opts);
    ASSERT_TRUE(a.CreateNetwork(n).ok());
    ASSERT_TRUE(b.CreateNetwork(n).ok());
    for (NodeAddr addr : a.AliveAddrs()) a.StabilizeNode(addr);
    ThreadPool pool(2);
    b.StabilizeAll(&pool);
    for (NodeAddr addr = 1; addr <= n; ++addr) {
      const Node* na = a.GetNode(addr);
      const Node* nb = b.GetNode(addr);
      ASSERT_NE(na, nullptr);
      ASSERT_NE(nb, nullptr);
      EXPECT_EQ(na->successors(), nb->successors()) << "n=" << n;
      EXPECT_EQ(na->predecessor(), nb->predecessor()) << "n=" << n;
      for (int k = 0; k < FingerTable::kBits; ++k) {
        EXPECT_EQ(na->fingers().Get(k), nb->fingers().Get(k))
            << "n=" << n << " finger " << k;
      }
    }
  }
}

TEST(StabilizeAllTest, RepeatedSweepsAreIdempotent) {
  Deployment d = BuildChurnedRing(600, 13);
  ThreadPool pool(3);
  d.ring->StabilizeAll(&pool);
  const auto first = CaptureRouting(d);
  d.ring->StabilizeAll(&pool);
  ExpectSameRouting(CaptureRouting(d), first);
}

}  // namespace
}  // namespace ringdde
