#include "core/theory.h"

#include <gtest/gtest.h>

#include "stats/bounds.h"

namespace ringdde {
namespace {

TEST(TheoryTest, RecommendedProbesMatchesDkw) {
  EXPECT_EQ(RecommendedProbeCount(0.05, 0.05),
            DkwRequiredSamples(0.05, 0.05));
}

TEST(TheoryTest, EpsilonShrinksWithBudget) {
  EXPECT_GT(ProbeCountEpsilon(100, 0.05), ProbeCountEpsilon(1000, 0.05));
}

TEST(TheoryTest, LookupHopsHalfLog) {
  EXPECT_DOUBLE_EQ(ExpectedLookupHops(1024), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedLookupHops(1), 0.0);
}

TEST(TheoryTest, EstimationMessagesLinearInProbes) {
  const double m1 = ExpectedEstimationMessages(100, 1024);
  const double m2 = ExpectedEstimationMessages(200, 1024);
  EXPECT_NEAR(m2 / m1, 2.0, 1e-12);
  // Per probe: 2*5 routing + 2 summary = 12 messages at n=1024.
  EXPECT_DOUBLE_EQ(m1, 1200.0);
}

TEST(TheoryTest, DistinctPeersSaturatesAtN) {
  EXPECT_NEAR(ExpectedDistinctPeers(10, 1000), 10.0, 0.1);
  EXPECT_NEAR(ExpectedDistinctPeers(100000, 100), 100.0, 1e-6);
  EXPECT_LT(ExpectedDistinctPeers(1000, 1000), 1000.0);
}

TEST(TheoryTest, CoverageBetweenZeroAndOne) {
  for (size_t m : {1u, 10u, 100u, 10000u}) {
    const double c = ExpectedCoverage(m, 500);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  EXPECT_LT(ExpectedCoverage(10, 1000), ExpectedCoverage(100, 1000));
}

}  // namespace
}  // namespace ringdde
