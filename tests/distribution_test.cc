#include "data/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ringdde {
namespace {

// ---------------------------------------------------------------------------
// Property sweep over the whole distribution zoo: every distribution must
// satisfy the probability axioms and agree with its own sampler.
// ---------------------------------------------------------------------------

using DistFactory = std::function<std::unique_ptr<Distribution>()>;

struct ZooCase {
  std::string label;
  DistFactory make;
};

class DistributionZooTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(DistributionZooTest, CdfIsMonotoneFromZeroToOne) {
  auto d = GetParam().make();
  EXPECT_NEAR(d->Cdf(-0.5), 0.0, 1e-12);
  EXPECT_NEAR(d->Cdf(1.5), 1.0, 1e-12);
  double prev = -1.0;
  for (int i = 0; i <= 500; ++i) {
    const double x = i / 500.0;
    const double f = d->Cdf(x);
    EXPECT_GE(f, prev - 1e-12) << "x=" << x;
    EXPECT_GE(f, -1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
    prev = f;
  }
}

TEST_P(DistributionZooTest, PdfIntegratesToOne) {
  auto d = GetParam().make();
  const int grid = 20000;
  double integral = 0.0;
  for (int i = 0; i < grid; ++i) {
    const double x = (i + 0.5) / grid;
    integral += d->Pdf(x) / grid;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST_P(DistributionZooTest, PdfIsDerivativeOfCdf) {
  auto d = GetParam().make();
  // Compare (Cdf(x+h)-Cdf(x-h))/2h to Pdf(x) at points away from jumps.
  const double h = 1e-6;
  // Points chosen away from the bin boundaries of every zoo member (Zipf
  // members have bins at multiples of 1/100, 1/1000, 1/50).
  for (double x : {0.1335, 0.3145, 0.5235, 0.6815, 0.8765}) {
    const double numeric = (d->Cdf(x + h) - d->Cdf(x - h)) / (2.0 * h);
    const double pdf = d->Pdf(x);
    // Piecewise-constant densities (Zipf) have exact agreement within a
    // bin; smooth ones approximate. Tolerate 2% relative + small absolute.
    EXPECT_NEAR(numeric, pdf, 0.02 * std::max(1.0, pdf) + 1e-3)
        << "x=" << x << " dist=" << d->Name();
  }
}

TEST_P(DistributionZooTest, QuantileInvertsCdf) {
  auto d = GetParam().make();
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double x = d->Quantile(p);
    EXPECT_GE(x, d->support_lo() - 1e-9);
    EXPECT_LE(x, d->support_hi() + 1e-9);
    EXPECT_NEAR(d->Cdf(x), p, 1e-6) << "p=" << p << " dist=" << d->Name();
  }
}

TEST_P(DistributionZooTest, QuantileIsMonotone) {
  auto d = GetParam().make();
  double prev = d->support_lo() - 1.0;
  for (int i = 0; i <= 100; ++i) {
    const double x = d->Quantile(i / 100.0);
    EXPECT_GE(x, prev - 1e-12);
    prev = x;
  }
}

TEST_P(DistributionZooTest, SamplesMatchCdfByKsTest) {
  auto d = GetParam().make();
  Rng rng(4242);
  const int n = 20000;
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(d->Sample(rng));
  std::sort(xs.begin(), xs.end());
  double ks = 0.0;
  for (int i = 0; i < n; ++i) {
    const double emp = static_cast<double>(i + 1) / n;
    ks = std::max(ks, std::fabs(emp - d->Cdf(xs[i])));
  }
  // DKW at n=20000, delta=1e-6: eps ~ 0.019.
  EXPECT_LT(ks, 0.02) << d->Name();
}

TEST_P(DistributionZooTest, SamplesStayInSupport) {
  auto d = GetParam().make();
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = d->Sample(rng);
    EXPECT_GE(x, d->support_lo() - 1e-12);
    EXPECT_LE(x, d->support_hi() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, DistributionZooTest,
    ::testing::Values(
        ZooCase{"Uniform",
                [] { return std::make_unique<UniformDistribution>(); }},
        ZooCase{"UniformSub",
                [] {
                  return std::make_unique<UniformDistribution>(0.2, 0.7);
                }},
        ZooCase{"NormalCentered",
                [] {
                  return std::make_unique<TruncatedNormalDistribution>(0.5,
                                                                       0.15);
                }},
        ZooCase{"NormalEdge",
                [] {
                  return std::make_unique<TruncatedNormalDistribution>(0.1,
                                                                       0.3);
                }},
        ZooCase{"NormalTight",
                [] {
                  return std::make_unique<TruncatedNormalDistribution>(0.5,
                                                                       0.02);
                }},
        ZooCase{"Exponential",
                [] {
                  return std::make_unique<TruncatedExponentialDistribution>(
                      5.0);
                }},
        ZooCase{"ExponentialMild",
                [] {
                  return std::make_unique<TruncatedExponentialDistribution>(
                      1.0);
                }},
        ZooCase{"Pareto",
                [] {
                  return std::make_unique<BoundedParetoDistribution>(1.2,
                                                                     0.01);
                }},
        ZooCase{"ZipfModerate",
                [] { return std::make_unique<ZipfDistribution>(100, 0.8); }},
        ZooCase{"ZipfHeavy",
                [] { return std::make_unique<ZipfDistribution>(1000, 1.2); }},
        ZooCase{"ZipfUniformTheta0",
                [] { return std::make_unique<ZipfDistribution>(50, 0.0); }},
        ZooCase{"Mixture",
                [] {
                  return std::make_unique<GaussianMixtureDistribution>(
                      std::vector<GaussianMixtureDistribution::Component>{
                          {0.5, 0.25, 0.05}, {0.5, 0.75, 0.05}},
                      "Bimodal");
                }}),
    [](const ::testing::TestParamInfo<ZooCase>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Distribution-specific facts.
// ---------------------------------------------------------------------------

TEST(UniformDistributionTest, ClosedForms) {
  UniformDistribution d(0.25, 0.75);
  EXPECT_DOUBLE_EQ(d.Pdf(0.5), 2.0);
  EXPECT_DOUBLE_EQ(d.Pdf(0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.5);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 0.5);
  EXPECT_EQ(d.Name(), "Uniform[0.25,0.75]");
}

TEST(TruncatedNormalTest, SymmetricAroundMean) {
  TruncatedNormalDistribution d(0.5, 0.1);
  EXPECT_NEAR(d.Cdf(0.5), 0.5, 1e-9);
  EXPECT_NEAR(d.Pdf(0.4), d.Pdf(0.6), 1e-9);
  EXPECT_NEAR(d.Quantile(0.5), 0.5, 1e-9);
}

TEST(TruncatedNormalTest, TruncationRenormalizes) {
  // Mean outside [0,1]: all mass squeezed inside, CDF still spans [0,1].
  TruncatedNormalDistribution d(1.2, 0.3);
  EXPECT_NEAR(d.Cdf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(d.Cdf(0.0), 0.0, 1e-12);
  EXPECT_GT(d.Pdf(0.99), d.Pdf(0.01));
}

TEST(TruncatedExponentialTest, DecaysMonotonically) {
  TruncatedExponentialDistribution d(5.0);
  EXPECT_GT(d.Pdf(0.1), d.Pdf(0.5));
  EXPECT_GT(d.Pdf(0.5), d.Pdf(0.9));
}

TEST(BoundedParetoTest, HeavyHeadAtLowerBound) {
  BoundedParetoDistribution d(1.5, 0.01);
  EXPECT_GT(d.Pdf(0.02), d.Pdf(0.5));
  EXPECT_DOUBLE_EQ(d.Cdf(0.005), 0.0);
  EXPECT_DOUBLE_EQ(d.support_lo(), 0.01);
}

TEST(ZipfDistributionTest, Theta0IsUniform) {
  ZipfDistribution d(10, 0.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(d.masses()[i], 0.1, 1e-12);
  }
  EXPECT_NEAR(d.Pdf(0.55), 1.0, 1e-12);
}

TEST(ZipfDistributionTest, SkewConcentratesMassAtHead) {
  ZipfDistribution d(1000, 1.0);
  // First value (bin [0, 0.001)) carries by far the biggest single mass.
  EXPECT_GT(d.masses()[0], d.masses()[1]);
  EXPECT_GT(d.Cdf(0.01), 0.3);  // top 1% of values >> 1% of the mass
  EXPECT_DOUBLE_EQ(d.theta(), 1.0);
}

TEST(PiecewiseConstantTest, MassesNormalized) {
  PiecewiseConstantDistribution d({1.0, 3.0}, "test");
  EXPECT_DOUBLE_EQ(d.masses()[0], 0.25);
  EXPECT_DOUBLE_EQ(d.masses()[1], 0.75);
  EXPECT_DOUBLE_EQ(d.Pdf(0.25), 0.5);   // 0.25 * 2 bins
  EXPECT_DOUBLE_EQ(d.Pdf(0.75), 1.5);
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.25);
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 0.5);
}

TEST(GaussianMixtureTest, ModesWhereComponentsAre) {
  GaussianMixtureDistribution d({{0.5, 0.3, 0.05}, {0.5, 0.7, 0.05}});
  EXPECT_GT(d.Pdf(0.3), d.Pdf(0.5));
  EXPECT_GT(d.Pdf(0.7), d.Pdf(0.5));
  EXPECT_NEAR(d.Cdf(0.5), 0.5, 1e-6);
}

TEST(StandardBenchmarkDistributionsTest, FourCanonicalWorkloads) {
  const auto dists = StandardBenchmarkDistributions();
  ASSERT_EQ(dists.size(), 4u);
  EXPECT_EQ(dists[0]->Name(), "Uniform");
  EXPECT_NE(dists[2]->Name().find("Zipf"), std::string::npos);
}

}  // namespace
}  // namespace ringdde
