#include "stats/gk_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace ringdde {
namespace {

TEST(GkSketchTest, EmptySketchReturnsZero) {
  GkSketch sk(0.01);
  EXPECT_DOUBLE_EQ(sk.Quantile(0.5), 0.0);
  EXPECT_EQ(sk.count(), 0u);
  EXPECT_EQ(sk.RankOf(0.5), 0u);
}

TEST(GkSketchTest, SingleValue) {
  GkSketch sk(0.1);
  sk.Add(0.42);
  EXPECT_DOUBLE_EQ(sk.Quantile(0.5), 0.42);
  EXPECT_EQ(sk.count(), 1u);
}

TEST(GkSketchTest, QuantilesWithinEpsilonUniform) {
  const double eps = 0.02;
  GkSketch sk(eps);
  Rng rng(1);
  const int n = 50000;
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble();
    xs.push_back(x);
    sk.Add(x);
  }
  std::sort(xs.begin(), xs.end());
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double approx = sk.Quantile(p);
    // True rank of the returned value must be within eps*n of p*n.
    const auto rank = static_cast<double>(
        std::lower_bound(xs.begin(), xs.end(), approx) - xs.begin());
    EXPECT_NEAR(rank / n, p, 2.0 * eps) << "p=" << p;
  }
}

TEST(GkSketchTest, QuantilesWithinEpsilonSkewed) {
  const double eps = 0.02;
  GkSketch sk(eps);
  Rng rng(2);
  const int n = 30000;
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) {
    const double x = std::pow(rng.UniformDouble(), 4.0);  // heavy at 0
    xs.push_back(x);
    sk.Add(x);
  }
  std::sort(xs.begin(), xs.end());
  for (double p : {0.1, 0.5, 0.9}) {
    const double approx = sk.Quantile(p);
    const auto rank = static_cast<double>(
        std::lower_bound(xs.begin(), xs.end(), approx) - xs.begin());
    EXPECT_NEAR(rank / n, p, 2.0 * eps);
  }
}

TEST(GkSketchTest, SortedAndReverseSortedInput) {
  for (bool reverse : {false, true}) {
    GkSketch sk(0.05);
    for (int i = 0; i < 10000; ++i) {
      const int v = reverse ? 9999 - i : i;
      sk.Add(v / 10000.0);
    }
    EXPECT_NEAR(sk.Quantile(0.5), 0.5, 0.12);
    EXPECT_NEAR(sk.Quantile(0.9), 0.9, 0.12);
  }
}

TEST(GkSketchTest, CompressionBoundsMemory) {
  GkSketch sk(0.01);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) sk.Add(rng.UniformDouble());
  // GK stores O((1/eps) log(eps n)) tuples; 1/0.01 * log(1000) ~ 700.
  EXPECT_LT(sk.tuple_count(), 2000u);
  EXPECT_EQ(sk.count(), 100000u);
}

TEST(GkSketchTest, CoarserEpsilonSmallerSketch) {
  GkSketch fine(0.005), coarse(0.05);
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.UniformDouble();
    fine.Add(x);
    coarse.Add(x);
  }
  EXPECT_LT(coarse.tuple_count(), fine.tuple_count());
  // EncodedBytes is the exact serialized frame size, not an approximation:
  // the identity with the real codec output is what CostCounters charges.
  Encoder enc;
  coarse.EncodeTo(&enc);
  EXPECT_EQ(coarse.EncodedBytes(), enc.size());
  EXPECT_LT(coarse.EncodedBytes(), fine.EncodedBytes());
}

TEST(GkSketchTest, RankOfTracksTruth) {
  GkSketch sk(0.02);
  const int n = 20000;
  Rng rng(5);
  for (int i = 0; i < n; ++i) sk.Add(rng.UniformDouble());
  for (double x : {0.1, 0.5, 0.9}) {
    const double rank = static_cast<double>(sk.RankOf(x));
    EXPECT_NEAR(rank / n, x, 0.05) << "x=" << x;
  }
}

TEST(GkSketchTest, QuantileMonotone) {
  GkSketch sk(0.02);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) sk.Add(rng.UniformDouble());
  double prev = -1.0;
  for (int i = 0; i <= 20; ++i) {
    const double q = sk.Quantile(i / 20.0);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(GkSketchTest, ExtremeQuantilesReturnMinMax) {
  GkSketch sk(0.05);
  for (int i = 1; i <= 1000; ++i) sk.Add(i / 1000.0);
  EXPECT_NEAR(sk.Quantile(0.0), 0.001, 0.06);
  EXPECT_NEAR(sk.Quantile(1.0), 1.0, 0.06);
}

}  // namespace
}  // namespace ringdde
