#include "core/wire.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/dataset.h"
#include "data/distribution.h"
#include "sim/transport.h"

namespace ringdde {
namespace {

LocalSummary MakeSummary() {
  Node node(42, RingId::FromUnit(0.6));
  node.set_predecessor(NodeEntry{43, RingId::FromUnit(0.4)});
  node.InsertKeys({0.45, 0.5, 0.55, 0.58});
  return ComputeLocalSummary(node, 6);
}

TEST(WireTest, LocalSummaryRoundTrips) {
  const LocalSummary original = MakeSummary();
  Encoder enc;
  EncodeLocalSummary(original, &enc);
  EXPECT_EQ(enc.size(), EncodedSummarySize(original));
  Decoder dec(enc.buffer());
  Result<LocalSummary> decoded = DecodeLocalSummary(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->addr, original.addr);
  EXPECT_EQ(decoded->arc_lo, original.arc_lo);
  EXPECT_EQ(decoded->arc_hi, original.arc_hi);
  EXPECT_EQ(decoded->item_count, original.item_count);
  EXPECT_EQ(decoded->quantiles, original.quantiles);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, EmptySummaryRoundTrips) {
  Node node(1, RingId(100));
  node.set_predecessor(NodeEntry{2, RingId(50)});
  const LocalSummary original = ComputeLocalSummary(node, 4);
  Encoder enc;
  EncodeLocalSummary(original, &enc);
  Decoder dec(enc.buffer());
  Result<LocalSummary> decoded = DecodeLocalSummary(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->item_count, 0u);
  EXPECT_TRUE(decoded->quantiles.empty());
}

TEST(WireTest, SummaryWrongTagRejected) {
  Encoder enc;
  enc.PutU8(0x00);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeLocalSummary(&dec).status().IsInvalidArgument());
}

TEST(WireTest, SummaryTruncationRejected) {
  Encoder enc;
  EncodeLocalSummary(MakeSummary(), &enc);
  for (size_t len = 0; len < enc.size(); len += 3) {
    Decoder dec(enc.buffer().data(), len);
    EXPECT_FALSE(DecodeLocalSummary(&dec).ok()) << "len=" << len;
  }
}

TEST(WireTest, SummaryNonAscendingQuantilesRejected) {
  Encoder enc;
  enc.PutU8(0x51);          // tag
  enc.PutVarint64(1);       // addr
  enc.PutFixed64(0);        // arc_lo
  enc.PutFixed64(100);      // arc_hi
  enc.PutVarint64(2);       // count
  enc.PutVarint64(2);       // 2 quantiles, descending
  enc.PutDouble(0.9);
  enc.PutDouble(0.1);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeLocalSummary(&dec).status().IsInvalidArgument());
}

TEST(WireTest, SummaryHugeQuantileCountRejected) {
  Encoder enc;
  enc.PutU8(0x51);
  enc.PutVarint64(1);
  enc.PutFixed64(0);
  enc.PutFixed64(100);
  enc.PutVarint64(2);
  enc.PutVarint64(1u << 30);  // absurd count, no payload behind it
  Decoder dec(enc.buffer());
  EXPECT_FALSE(DecodeLocalSummary(&dec).ok());
}

TEST(WireTest, PiecewiseCdfRoundTrips) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.3, 0.4}, {0.7, 0.8}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  Encoder enc;
  EncodePiecewiseCdf(*cdf, &enc);
  Decoder dec(enc.buffer());
  Result<PiecewiseLinearCdf> decoded = DecodePiecewiseCdf(&dec);
  ASSERT_TRUE(decoded.ok());
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(decoded->Evaluate(x), cdf->Evaluate(x));
  }
}

TEST(WireTest, CorruptCdfKnotsRejected) {
  Encoder enc;
  enc.PutU8(0x52);
  enc.PutVarint64(2);
  enc.PutDouble(0.5);  // x
  enc.PutDouble(0.9);  // f
  enc.PutDouble(0.2);  // x DECREASES -> invalid
  enc.PutDouble(1.0);
  Decoder dec(enc.buffer());
  EXPECT_FALSE(DecodePiecewiseCdf(&dec).ok());
}

TEST(WireTest, DensityEstimateRoundTripsEndToEnd) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(256).ok());
  TruncatedNormalDistribution dist(0.5, 0.15);
  Rng rng(1);
  ring.InsertDatasetBulk(GenerateDataset(dist, 20000, rng).keys);
  DistributionFreeEstimator est(&ring, DdeOptions{});
  auto original = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(original.ok());

  Encoder enc;
  EncodeDensityEstimate(*original, &enc);
  Decoder dec(enc.buffer());
  Result<DensityEstimate> decoded = DecodeDensityEstimate(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_DOUBLE_EQ(decoded->estimated_total_items,
                   original->estimated_total_items);
  EXPECT_EQ(decoded->peers_probed, original->peers_probed);
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_DOUBLE_EQ(decoded->Cdf(x), original->Cdf(x));
  }
}

TEST(WireTest, EstimateWithNegativeTotalRejected) {
  DensityEstimate e;
  e.estimated_total_items = -5.0;
  Encoder enc;
  EncodeDensityEstimate(e, &enc);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeDensityEstimate(&dec).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Transport frame hardening: DecodeFrame must classify every malformed
// input as a Status — OutOfRange when more bytes could complete the frame,
// InvalidArgument when the stream is poisoned — and never crash, over-read,
// or return a frame from garbage.

std::vector<uint8_t> EncodedProbeFrame() {
  const std::vector<uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  std::vector<uint8_t> out;
  EncodeFrame(static_cast<uint8_t>(RpcType::kProbe), payload, &out);
  return out;
}

TEST(FrameTest, RoundTrips) {
  const std::vector<uint8_t> wire = EncodedProbeFrame();
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 5u);
  size_t consumed = 0;
  Result<Frame> decoded = DecodeFrame(wire.data(), wire.size(), &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded->type, static_cast<uint8_t>(RpcType::kProbe));
  EXPECT_EQ(decoded->payload,
            (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF, 0x01}));
}

TEST(FrameTest, EveryTruncationIsOutOfRangeNeverGarbage) {
  const std::vector<uint8_t> wire = EncodedProbeFrame();
  for (size_t len = 0; len < wire.size(); ++len) {
    size_t consumed = 0;
    Status status = DecodeFrame(wire.data(), len, &consumed).status();
    // Incomplete, not poisoned: the reader keeps the bytes and reads more.
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << "len=" << len;
  }
}

TEST(FrameTest, LengthLyingFrameRejected) {
  // Header claims a payload far beyond the frame cap; a reader that trusted
  // it would try to buffer 4GiB from a hostile peer.
  std::vector<uint8_t> wire = EncodedProbeFrame();
  wire[0] = 0xFF;
  wire[1] = 0xFF;
  wire[2] = 0xFF;
  wire[3] = 0xFF;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(wire.data(), wire.size(), &consumed)
                  .status()
                  .IsInvalidArgument());
}

TEST(FrameTest, LengthTooShortForTagByteRejected) {
  // length must cover at least version+type; 0 and 1 are structurally
  // impossible and mean the stream is corrupt, not short.
  for (uint8_t lied : {uint8_t{0}, uint8_t{1}}) {
    std::vector<uint8_t> wire = EncodedProbeFrame();
    wire[0] = lied;
    wire[1] = wire[2] = wire[3] = 0;
    size_t consumed = 0;
    EXPECT_TRUE(DecodeFrame(wire.data(), wire.size(), &consumed)
                    .status()
                    .IsInvalidArgument())
        << "length=" << int{lied};
  }
}

TEST(FrameTest, VersionMismatchRejected) {
  std::vector<uint8_t> wire = EncodedProbeFrame();
  wire[4] = kWireProtocolVersion + 1;
  size_t consumed = 0;
  EXPECT_TRUE(DecodeFrame(wire.data(), wire.size(), &consumed)
                  .status()
                  .IsInvalidArgument());
}

TEST(FrameTest, GarbledBytesNeverCrash) {
  // Random byte-flip fuzz over a valid frame: every mutant must decode to
  // ok / OutOfRange / InvalidArgument without crashing, and an ok decode
  // must never consume more bytes than were offered.
  const std::vector<uint8_t> pristine = EncodedProbeFrame();
  Rng rng(0xF422);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> wire = pristine;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      wire[rng.UniformU64(wire.size())] ^=
          static_cast<uint8_t>(1u << rng.UniformU64(8));
    }
    size_t consumed = 0;
    Result<Frame> got = DecodeFrame(wire.data(), wire.size(), &consumed);
    if (got.ok()) {
      EXPECT_LE(consumed, wire.size());
    }
  }
}

// ---------------------------------------------------------------------------
// v2 (correlation-id) frames: the multiplexed channel's wire format. Same
// hardening contract as v1, plus the id must round-trip exactly and a v2
// header lying about its length (too short to hold the id) must poison the
// stream rather than mis-slice the payload.

std::vector<uint8_t> EncodedMuxProbeFrame(uint64_t correlation_id) {
  const std::vector<uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  std::vector<uint8_t> out;
  EncodeMuxFrame(static_cast<uint8_t>(RpcType::kProbe), correlation_id,
                 payload, &out);
  return out;
}

TEST(MuxFrameTest, RoundTripsCorrelationId) {
  for (uint64_t cid : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEF},
                       ~uint64_t{0}}) {
    const std::vector<uint8_t> wire = EncodedMuxProbeFrame(cid);
    EXPECT_EQ(wire.size(), kMuxFrameHeaderBytes + 5u);
    size_t consumed = 0;
    Result<Frame> decoded = DecodeFrame(wire.data(), wire.size(), &consumed);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(decoded->version, kWireProtocolVersionMux);
    EXPECT_EQ(decoded->correlation_id, cid);
    EXPECT_EQ(decoded->type, static_cast<uint8_t>(RpcType::kProbe));
    EXPECT_EQ(decoded->payload,
              (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF, 0x01}));
  }
}

TEST(MuxFrameTest, EveryTruncationIsOutOfRangeNeverGarbage) {
  const std::vector<uint8_t> wire = EncodedMuxProbeFrame(0x1234567890ABCDEF);
  for (size_t len = 0; len < wire.size(); ++len) {
    size_t consumed = 0;
    Status status = DecodeFrame(wire.data(), len, &consumed).status();
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << "len=" << len;
  }
}

TEST(MuxFrameTest, LengthTooShortForCorrelationIdRejected) {
  // A v2 frame whose length cannot cover version+type+id is structurally
  // impossible — corrupt stream, not a short read.
  for (uint32_t lied = 2; lied < 10; ++lied) {
    std::vector<uint8_t> wire = EncodedMuxProbeFrame(7);
    wire[0] = static_cast<uint8_t>(lied);
    wire[1] = wire[2] = wire[3] = 0;
    size_t consumed = 0;
    EXPECT_TRUE(DecodeFrame(wire.data(), wire.size(), &consumed)
                    .status()
                    .IsInvalidArgument())
        << "length=" << lied;
  }
}

TEST(MuxFrameTest, EncodeAppendsSoFramesConcatenate) {
  // Both encoders APPEND: encoding into a non-empty buffer builds a valid
  // back-to-back stream (and reused scratch buffers must be cleared first —
  // the contract the pipelined channel relies on).
  std::vector<uint8_t> wire;
  EncodeMuxFrame(static_cast<uint8_t>(RpcType::kProbe), 11,
                 std::vector<uint8_t>{0x01}, &wire);
  EncodeMuxFrame(static_cast<uint8_t>(RpcType::kEstimate), 12,
                 std::vector<uint8_t>{0x02, 0x03}, &wire);
  size_t consumed = 0;
  Result<Frame> first = DecodeFrame(wire.data(), wire.size(), &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->correlation_id, 11u);
  size_t consumed2 = 0;
  Result<Frame> second = DecodeFrame(wire.data() + consumed,
                                     wire.size() - consumed, &consumed2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->correlation_id, 12u);
  EXPECT_EQ(consumed + consumed2, wire.size());
}

TEST(MuxFrameTest, GarbledBytesNeverCrash) {
  const std::vector<uint8_t> pristine = EncodedMuxProbeFrame(42);
  Rng rng(0xF423);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> wire = pristine;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int f = 0; f < flips; ++f) {
      wire[rng.UniformU64(wire.size())] ^=
          static_cast<uint8_t>(1u << rng.UniformU64(8));
    }
    size_t consumed = 0;
    Result<Frame> got = DecodeFrame(wire.data(), wire.size(), &consumed);
    if (got.ok()) {
      EXPECT_LE(consumed, wire.size());
    }
  }
}

TEST(FrameTest, StatusPayloadRoundTripsEveryCode) {
  const std::vector<Status> originals = {
      Status::InvalidArgument("frame says: \"it broke\""),
      Status::NotFound("no such node"),
      Status::FailedPrecondition("ring not built"),
      Status::OutOfRange("short read"),
      Status::Unavailable("peer crashed"),
      Status::TimedOut("hop budget exceeded"),
      Status::Internal("handler bug"),
  };
  for (const Status& original : originals) {
    std::vector<uint8_t> payload;
    EncodeStatusPayload(original, &payload);
    const Status decoded = DecodeStatusPayload(payload);
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
}

// Randomized round-trip property: arbitrary (seeded) LocalSummary and
// DensityEstimate payloads survive encode -> frame -> decode bit-exactly.
TEST(FrameTest, RandomizedSummaryRoundTripProperty) {
  Rng rng(0x5EED'F00D);
  for (int trial = 0; trial < 50; ++trial) {
    // A node owning the arc (lo, hi] with its keys strictly inside it, so
    // the summary's quantiles are well-defined (no NaNs — NaN != NaN would
    // fail the comparison below even for a bit-exact codec).
    const double lo = rng.UniformDouble(0.0, 0.5);
    const double hi = rng.UniformDouble(lo + 0.01, 1.0);
    Node node(rng.NextU64() | 1, RingId::FromUnit(hi));
    node.set_predecessor(
        NodeEntry{rng.NextU64() | 1, RingId::FromUnit(lo)});
    const uint64_t n_keys = rng.UniformU64(200);
    std::vector<double> keys;
    keys.reserve(n_keys);
    for (uint64_t i = 0; i < n_keys; ++i) {
      keys.push_back(rng.UniformDouble(lo + 1e-9, hi));
    }
    node.InsertKeys(keys);
    // ComputeLocalSummary requires >= 2 quantile points.
    const LocalSummary original = ComputeLocalSummary(
        node, static_cast<int>(2 + rng.UniformU64(15)));

    Encoder enc;
    EncodeLocalSummary(original, &enc);
    std::vector<uint8_t> wire;
    EncodeFrame(static_cast<uint8_t>(RpcType::kProbe), enc.buffer(), &wire);

    size_t consumed = 0;
    Result<Frame> back = DecodeFrame(wire.data(), wire.size(), &consumed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(consumed, wire.size());
    Decoder dec(back->payload);
    Result<LocalSummary> decoded = DecodeLocalSummary(&dec);
    ASSERT_TRUE(decoded.ok()) << "trial=" << trial;
    EXPECT_EQ(decoded->addr, original.addr);
    EXPECT_EQ(decoded->arc_lo, original.arc_lo);
    EXPECT_EQ(decoded->arc_hi, original.arc_hi);
    EXPECT_EQ(decoded->item_count, original.item_count);
    EXPECT_EQ(decoded->quantiles, original.quantiles);
    EXPECT_TRUE(dec.Done());
  }
}

TEST(FrameTest, RandomizedEstimateRoundTripProperty) {
  Rng rng(0xE57'1AA7E);
  for (int trial = 0; trial < 20; ++trial) {
    Network net;
    ChordRing ring(&net);
    ASSERT_TRUE(ring.CreateNetwork(32 + rng.UniformU64(64)).ok());
    TruncatedNormalDistribution dist(rng.UniformDouble(0.3, 0.7),
                                     rng.UniformDouble(0.05, 0.3));
    Rng data_rng(rng.NextU64());
    ring.InsertDatasetBulk(
        GenerateDataset(dist, 500 + rng.UniformU64(3000), data_rng).keys);
    DdeOptions opts;
    opts.num_probes = 16;
    opts.seed = rng.NextU64();
    DistributionFreeEstimator est(&ring, opts);
    auto original = est.Estimate(ring.AliveAddrs()[0]);
    ASSERT_TRUE(original.ok());

    Encoder enc;
    EncodeDensityEstimate(*original, &enc);
    std::vector<uint8_t> wire;
    EncodeFrame(static_cast<uint8_t>(RpcType::kEstimate), enc.buffer(), &wire);

    size_t consumed = 0;
    Result<Frame> back = DecodeFrame(wire.data(), wire.size(), &consumed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    Decoder dec(back->payload);
    Result<DensityEstimate> decoded = DecodeDensityEstimate(&dec);
    ASSERT_TRUE(decoded.ok()) << "trial=" << trial;
    EXPECT_DOUBLE_EQ(decoded->estimated_total_items,
                     original->estimated_total_items);
    EXPECT_EQ(decoded->peers_probed, original->peers_probed);
    for (int i = 0; i < 8; ++i) {
      const double x = rng.UniformDouble();
      EXPECT_DOUBLE_EQ(decoded->Cdf(x), original->Cdf(x)) << "x=" << x;
    }
  }
}

}  // namespace
}  // namespace ringdde
