#include "core/wire.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/dataset.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

LocalSummary MakeSummary() {
  Node node(42, RingId::FromUnit(0.6));
  node.set_predecessor(NodeEntry{43, RingId::FromUnit(0.4)});
  node.InsertKeys({0.45, 0.5, 0.55, 0.58});
  return ComputeLocalSummary(node, 6);
}

TEST(WireTest, LocalSummaryRoundTrips) {
  const LocalSummary original = MakeSummary();
  Encoder enc;
  EncodeLocalSummary(original, &enc);
  EXPECT_EQ(enc.size(), EncodedSummarySize(original));
  Decoder dec(enc.buffer());
  Result<LocalSummary> decoded = DecodeLocalSummary(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->addr, original.addr);
  EXPECT_EQ(decoded->arc_lo, original.arc_lo);
  EXPECT_EQ(decoded->arc_hi, original.arc_hi);
  EXPECT_EQ(decoded->item_count, original.item_count);
  EXPECT_EQ(decoded->quantiles, original.quantiles);
  EXPECT_TRUE(dec.Done());
}

TEST(WireTest, EmptySummaryRoundTrips) {
  Node node(1, RingId(100));
  node.set_predecessor(NodeEntry{2, RingId(50)});
  const LocalSummary original = ComputeLocalSummary(node, 4);
  Encoder enc;
  EncodeLocalSummary(original, &enc);
  Decoder dec(enc.buffer());
  Result<LocalSummary> decoded = DecodeLocalSummary(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->item_count, 0u);
  EXPECT_TRUE(decoded->quantiles.empty());
}

TEST(WireTest, SummaryWrongTagRejected) {
  Encoder enc;
  enc.PutU8(0x00);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeLocalSummary(&dec).status().IsInvalidArgument());
}

TEST(WireTest, SummaryTruncationRejected) {
  Encoder enc;
  EncodeLocalSummary(MakeSummary(), &enc);
  for (size_t len = 0; len < enc.size(); len += 3) {
    Decoder dec(enc.buffer().data(), len);
    EXPECT_FALSE(DecodeLocalSummary(&dec).ok()) << "len=" << len;
  }
}

TEST(WireTest, SummaryNonAscendingQuantilesRejected) {
  Encoder enc;
  enc.PutU8(0x51);          // tag
  enc.PutVarint64(1);       // addr
  enc.PutFixed64(0);        // arc_lo
  enc.PutFixed64(100);      // arc_hi
  enc.PutVarint64(2);       // count
  enc.PutVarint64(2);       // 2 quantiles, descending
  enc.PutDouble(0.9);
  enc.PutDouble(0.1);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeLocalSummary(&dec).status().IsInvalidArgument());
}

TEST(WireTest, SummaryHugeQuantileCountRejected) {
  Encoder enc;
  enc.PutU8(0x51);
  enc.PutVarint64(1);
  enc.PutFixed64(0);
  enc.PutFixed64(100);
  enc.PutVarint64(2);
  enc.PutVarint64(1u << 30);  // absurd count, no payload behind it
  Decoder dec(enc.buffer());
  EXPECT_FALSE(DecodeLocalSummary(&dec).ok());
}

TEST(WireTest, PiecewiseCdfRoundTrips) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.3, 0.4}, {0.7, 0.8}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  Encoder enc;
  EncodePiecewiseCdf(*cdf, &enc);
  Decoder dec(enc.buffer());
  Result<PiecewiseLinearCdf> decoded = DecodePiecewiseCdf(&dec);
  ASSERT_TRUE(decoded.ok());
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(decoded->Evaluate(x), cdf->Evaluate(x));
  }
}

TEST(WireTest, CorruptCdfKnotsRejected) {
  Encoder enc;
  enc.PutU8(0x52);
  enc.PutVarint64(2);
  enc.PutDouble(0.5);  // x
  enc.PutDouble(0.9);  // f
  enc.PutDouble(0.2);  // x DECREASES -> invalid
  enc.PutDouble(1.0);
  Decoder dec(enc.buffer());
  EXPECT_FALSE(DecodePiecewiseCdf(&dec).ok());
}

TEST(WireTest, DensityEstimateRoundTripsEndToEnd) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(256).ok());
  TruncatedNormalDistribution dist(0.5, 0.15);
  Rng rng(1);
  ring.InsertDatasetBulk(GenerateDataset(dist, 20000, rng).keys);
  DistributionFreeEstimator est(&ring, DdeOptions{});
  auto original = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(original.ok());

  Encoder enc;
  EncodeDensityEstimate(*original, &enc);
  Decoder dec(enc.buffer());
  Result<DensityEstimate> decoded = DecodeDensityEstimate(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_DOUBLE_EQ(decoded->estimated_total_items,
                   original->estimated_total_items);
  EXPECT_EQ(decoded->peers_probed, original->peers_probed);
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_DOUBLE_EQ(decoded->Cdf(x), original->Cdf(x));
  }
}

TEST(WireTest, EstimateWithNegativeTotalRejected) {
  DensityEstimate e;
  e.estimated_total_items = -5.0;
  Encoder enc;
  EncodeDensityEstimate(e, &enc);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(DecodeDensityEstimate(&dec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ringdde
