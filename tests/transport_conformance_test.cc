// Sim-vs-wire conformance: one command corpus (join -> stabilize -> bulk
// insert -> probe -> estimate) executed three ways —
//   1. ORACLE: raw sim calls on a local Deployment (no service code),
//   2. LOOPBACK: RingRpcService behind LoopbackChannel (frame + payload
//      codecs, zero sockets),
//   3. WIRE: >= 2 forked ringdde_node processes behind SocketRpcChannel,
//      with the >= 8 queriers partitioned across the processes —
// asserting estimates match the oracle to 1e-9 and CostCounters message
// counts are identical. A failure localizes by rung: loopback-only =>
// codecs; wire-only => socket mechanics.

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/probe.h"
#include "core/ring_service.h"
#include "core/sketch_aggregation.h"
#include "data/dataset.h"
#include "sim/socket_transport.h"

namespace ringdde {
namespace {

constexpr uint64_t kCorpusSeed = 0x7A35;
constexpr int kQueriers = 8;

DeploymentSpec SpecForCase(uint64_t case_seed) {
  DeploymentSpec spec;
  spec.peers = 8;
  spec.ring_seed = DeriveTaskSeed(case_seed, 1);
  spec.net_seed = DeriveTaskSeed(case_seed, 2);
  spec.num_probes = 32;
  spec.refinement_rounds = 2;
  spec.local_quantiles = 8;
  // Non-default on purpose: proves the spec codec and --sketch-levels flag
  // thread the grid resolution through to every replica shard.
  spec.sketch_levels = 48;
  return spec;
}

InsertSpec InsertForCase(uint64_t case_seed) {
  InsertSpec ins;
  ins.dist_kind = 2;  // zipf(values, theta)
  ins.param_a = 400;
  ins.param_b = 0.9;
  ins.count = 2000;
  ins.data_seed = DeriveTaskSeed(case_seed, 3);
  return ins;
}

/// The oracle: the corpus executed with raw sim calls — exactly the
/// semantics RingRpcService promises to reproduce.
struct OracleRun {
  std::unique_ptr<Deployment> dep;
  std::vector<uint64_t> fingerprints;  // after each mutating step
  std::vector<LocalSummary> probes;
  std::vector<CostCounters> probe_costs;
  std::vector<DensityEstimate> estimates;
  std::vector<DensityEstimate> sketch_estimates;
};

OracleRun RunOracle(const DeploymentSpec& spec, const InsertSpec& ins,
                    uint64_t case_seed) {
  OracleRun run;
  Result<std::unique_ptr<Deployment>> built = BuildDeployment(spec);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  run.dep = std::move(*built);
  ChordRing& ring = *run.dep->ring;

  for (int i = 0; i < 4; ++i) {
    Result<NodeAddr> joined = ring.Join(ring.AliveAddrAtRank(0));
    EXPECT_TRUE(joined.ok());
  }
  run.fingerprints.push_back(RingFingerprint(ring));
  ring.StabilizeAll();
  run.fingerprints.push_back(RingFingerprint(ring));

  Result<std::unique_ptr<Distribution>> dist = MakeSpecDistribution(ins);
  EXPECT_TRUE(dist.ok());
  Rng data_rng(ins.data_seed);
  ring.InsertDatasetBulk(
      GenerateDataset(**dist, static_cast<size_t>(ins.count), data_rng).keys);
  run.fingerprints.push_back(RingFingerprint(ring));
  ring.StabilizeAll();
  run.fingerprints.push_back(RingFingerprint(ring));

  ProbeOptions popts;
  popts.num_quantiles = static_cast<int>(spec.local_quantiles);
  popts.retry.max_attempts = static_cast<int>(spec.retry_max_attempts);
  for (int q = 0; q < kQueriers; ++q) {
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    const RingId target(SplitMix64(case_seed ^ (0x9E37u + q)));
    const uint64_t ctx_seed = DeriveTaskSeed(case_seed, 100 + q);
    CdfProber prober(&ring, popts);
    CostContext ctx = run.dep->network->MakeQueryContext(ctx_seed);
    Result<LocalSummary> summary = prober.Probe(ctx, querier, target);
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
    run.dep->network->Accumulate(ctx.counters, ctx.lost_messages);
    run.probes.push_back(*summary);
    run.probe_costs.push_back(ctx.counters);
  }

  for (int q = 0; q < kQueriers; ++q) {
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    DdeOptions opts;
    opts.num_probes = static_cast<size_t>(spec.num_probes);
    opts.refinement_rounds = static_cast<int>(spec.refinement_rounds);
    opts.local_quantiles = static_cast<int>(spec.local_quantiles);
    opts.retry.max_attempts = static_cast<int>(spec.retry_max_attempts);
    opts.seed = DeriveTaskSeed(case_seed, 200 + q);
    DistributionFreeEstimator estimator(&ring, opts);
    Result<DensityEstimate> estimate = estimator.Estimate(querier);
    EXPECT_TRUE(estimate.ok()) << estimate.status().ToString();
    run.estimates.push_back(*estimate);
  }

  for (int q = 0; q < kQueriers; ++q) {
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    SketchAggregationOptions sopts;
    sopts.sketch_levels = spec.sketch_levels;
    sopts.retry.max_attempts = static_cast<int>(spec.retry_max_attempts);
    sopts.seed = DeriveTaskSeed(case_seed, 300 + q);
    SketchAggregator aggregator(&ring, sopts);
    Result<DensityEstimate> estimate = aggregator.Estimate(querier);
    EXPECT_TRUE(estimate.ok()) << estimate.status().ToString();
    run.sketch_estimates.push_back(*estimate);
  }
  return run;
}

void ExpectEstimateMatches(const DensityEstimate& got,
                           const DensityEstimate& want, const char* what) {
  ASSERT_EQ(got.cdf.knots().size(), want.cdf.knots().size()) << what;
  for (size_t i = 0; i < want.cdf.knots().size(); ++i) {
    EXPECT_NEAR(got.cdf.knots()[i].x, want.cdf.knots()[i].x, 1e-9) << what;
    EXPECT_NEAR(got.cdf.knots()[i].f, want.cdf.knots()[i].f, 1e-9) << what;
  }
  EXPECT_NEAR(got.estimated_total_items, want.estimated_total_items, 1e-9)
      << what;
  EXPECT_EQ(got.peers_probed, want.peers_probed) << what;
  EXPECT_NEAR(got.covered_fraction, want.covered_fraction, 1e-9) << what;
  // CostCounters: message counts IDENTICAL, latency to 1e-9.
  EXPECT_EQ(got.cost.messages, want.cost.messages) << what;
  EXPECT_EQ(got.cost.hops, want.cost.hops) << what;
  EXPECT_EQ(got.cost.bytes, want.cost.bytes) << what;
  EXPECT_EQ(got.cost.timeouts, want.cost.timeouts) << what;
  EXPECT_EQ(got.cost.retries, want.cost.retries) << what;
  EXPECT_EQ(got.cost.failed_probes, want.cost.failed_probes) << what;
  EXPECT_NEAR(got.cost.latency_sum, want.cost.latency_sum, 1e-9) << what;
  EXPECT_EQ(got.probes_requested, want.probes_requested) << what;
  EXPECT_EQ(got.failed_probes, want.failed_probes) << what;
  EXPECT_EQ(got.retries, want.retries) << what;
  EXPECT_EQ(got.timeouts, want.timeouts) << what;
  EXPECT_NEAR(got.ConfidenceEpsilon(), want.ConfidenceEpsilon(), 1e-12)
      << what;
}

/// The sketch path pins BIT parity, not near-parity: knots round-trip
/// through the fixed64 IEEE codec unchanged, and the server runs the
/// identical SketchAggregator code over the identical seeds, so every
/// double must compare EXACTLY equal.
void ExpectSketchEstimateMatches(const DensityEstimate& got,
                                 const DensityEstimate& want,
                                 const char* what) {
  ExpectEstimateMatches(got, want, what);
  ASSERT_TRUE(want.sketch.has_value()) << what;
  ASSERT_TRUE(got.sketch.has_value()) << what;
  EXPECT_EQ(got.sketch->levels(), want.sketch->levels()) << what;
  EXPECT_EQ(got.sketch->count(), want.sketch->count()) << what;
  EXPECT_EQ(got.sketch->merge_depth(), want.sketch->merge_depth()) << what;
  ASSERT_EQ(got.sketch->knots().size(), want.sketch->knots().size()) << what;
  for (size_t i = 0; i < want.sketch->knots().size(); ++i) {
    EXPECT_EQ(got.sketch->knots()[i], want.sketch->knots()[i])
        << what << " sketch knot " << i << " not bit-identical";
  }
  EXPECT_TRUE(*got.sketch == *want.sketch) << what;
  // The regenerated CDF must ALSO be bit-identical (same ToCdf over the
  // same bits), which is stronger than the 1e-9 bound checked above.
  ASSERT_EQ(got.cdf.knots().size(), want.cdf.knots().size()) << what;
  for (size_t i = 0; i < want.cdf.knots().size(); ++i) {
    EXPECT_EQ(got.cdf.knots()[i].x, want.cdf.knots()[i].x) << what;
    EXPECT_EQ(got.cdf.knots()[i].f, want.cdf.knots()[i].f) << what;
  }
}

/// Drives the corpus through a RingClient; clients.size() >= 1. Mutating
/// commands are broadcast to every client (each replica shard applies them
/// identically); probe/estimate q is served by client q % clients.size().
void RunCorpusOverChannels(const std::vector<RingClient*>& clients,
                           const InsertSpec& ins, uint64_t case_seed,
                           const OracleRun& oracle, const char* what) {
  std::vector<uint64_t> fingerprints;
  for (RingClient* client : clients) {
    Result<uint64_t> fp = client->Join(4);
    ASSERT_TRUE(fp.ok()) << what << ": " << fp.status().ToString();
    fingerprints.push_back(*fp);
  }
  for (uint64_t fp : fingerprints) EXPECT_EQ(fp, oracle.fingerprints[0]);

  for (RingClient* client : clients) {
    Result<uint64_t> fp = client->Stabilize();
    ASSERT_TRUE(fp.ok()) << what;
    EXPECT_EQ(*fp, oracle.fingerprints[1]) << what;
  }
  for (RingClient* client : clients) {
    Result<uint64_t> items = client->Insert(ins);
    ASSERT_TRUE(items.ok()) << what;
    EXPECT_EQ(*items, oracle.dep->ring->TotalItems()) << what;
  }
  for (RingClient* client : clients) {
    Result<uint64_t> fp = client->Stabilize();
    ASSERT_TRUE(fp.ok()) << what;
    EXPECT_EQ(*fp, oracle.fingerprints[3]) << what;
  }

  for (int q = 0; q < kQueriers; ++q) {
    RingClient* client = clients[q % clients.size()];
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    const RingId target(SplitMix64(case_seed ^ (0x9E37u + q)));
    const uint64_t ctx_seed = DeriveTaskSeed(case_seed, 100 + q);
    Result<LocalSummary> summary = client->Probe(querier, target, ctx_seed);
    ASSERT_TRUE(summary.ok()) << what << ": " << summary.status().ToString();
    const LocalSummary& want = oracle.probes[q];
    EXPECT_EQ(summary->addr, want.addr) << what;
    EXPECT_EQ(summary->arc_lo, want.arc_lo) << what;
    EXPECT_EQ(summary->arc_hi, want.arc_hi) << what;
    EXPECT_EQ(summary->item_count, want.item_count) << what;
    ASSERT_EQ(summary->quantiles.size(), want.quantiles.size()) << what;
    for (size_t i = 0; i < want.quantiles.size(); ++i) {
      EXPECT_NEAR(summary->quantiles[i], want.quantiles[i], 1e-9) << what;
    }
  }

  for (int q = 0; q < kQueriers; ++q) {
    RingClient* client = clients[q % clients.size()];
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    const uint64_t query_seed = DeriveTaskSeed(case_seed, 200 + q);
    Result<DensityEstimate> estimate = client->Estimate(querier, query_seed);
    ASSERT_TRUE(estimate.ok()) << what << ": " << estimate.status().ToString();
    ExpectEstimateMatches(*estimate, oracle.estimates[q], what);
  }

  for (int q = 0; q < kQueriers; ++q) {
    RingClient* client = clients[q % clients.size()];
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    const uint64_t query_seed = DeriveTaskSeed(case_seed, 300 + q);
    Result<DensityEstimate> estimate =
        client->SketchEstimate(querier, query_seed);
    ASSERT_TRUE(estimate.ok()) << what << ": " << estimate.status().ToString();
    ExpectSketchEstimateMatches(*estimate, oracle.sketch_estimates[q], what);
  }
}

// --- Multi-process fixture --------------------------------------------------

/// Forks one ringdde_node, parses its LISTENING line for the ephemeral
/// port, and guarantees teardown: graceful SIGTERM with a bounded wait,
/// then SIGKILL — a wedged child can never outlive the test.
class NodeProcess {
 public:
  static std::unique_ptr<NodeProcess> Launch(
      const std::vector<std::string>& extra_args) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) return nullptr;
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return nullptr;
    }
    if (pid == 0) {
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      std::vector<std::string> args;
      args.push_back(RINGDDE_NODE_BIN);
      for (const std::string& a : extra_args) args.push_back(a);
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);
    }
    ::close(pipe_fds[1]);
    auto node = std::unique_ptr<NodeProcess>(new NodeProcess(pid));
    // Await the LISTENING line (the child prints it once serving).
    std::string banner;
    char c;
    while (banner.find('\n') == std::string::npos && banner.size() < 4096) {
      ssize_t n = ::read(pipe_fds[0], &c, 1);
      if (n <= 0) break;
      banner.push_back(c);
    }
    ::close(pipe_fds[0]);
    const char* marker = "RINGDDE_NODE LISTENING port=";
    size_t pos = banner.find(marker);
    if (pos == std::string::npos) return nullptr;
    node->port_ =
        static_cast<uint16_t>(std::atoi(banner.c_str() + pos +
                                        std::strlen(marker)));
    if (node->port_ == 0) return nullptr;
    return node;
  }

  ~NodeProcess() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGTERM);
    // Bounded graceful wait (~2 s), then the hammer.
    for (int i = 0; i < 100; ++i) {
      int status = 0;
      pid_t done = ::waitpid(pid_, &status, WNOHANG);
      if (done == pid_) return;
      ::usleep(20 * 1000);
    }
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }

  uint16_t port() const { return port_; }

 private:
  explicit NodeProcess(pid_t pid) : pid_(pid) {}
  pid_t pid_;
  uint16_t port_ = 0;
};

std::vector<std::string> NodeArgs(const DeploymentSpec& spec) {
  return {
      "--peers=" + std::to_string(spec.peers),
      "--ring-seed=" + std::to_string(spec.ring_seed),
      "--net-seed=" + std::to_string(spec.net_seed),
      "--probes=" + std::to_string(spec.num_probes),
      "--rounds=" + std::to_string(spec.refinement_rounds),
      "--quantiles=" + std::to_string(spec.local_quantiles),
      "--retries=" + std::to_string(spec.retry_max_attempts),
      "--sketch-levels=" + std::to_string(spec.sketch_levels),
  };
}

// --- The parameterized corpus ----------------------------------------------

class TransportConformanceTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportConformanceTest, LoopbackMatchesOracle) {
  const uint64_t case_seed = DeriveTaskSeed(kCorpusSeed, GetParam());
  const DeploymentSpec spec = SpecForCase(case_seed);
  const InsertSpec ins = InsertForCase(case_seed);
  OracleRun oracle = RunOracle(spec, ins, case_seed);

  RingRpcService service(spec);
  ASSERT_TRUE(service.Init().ok());
  LoopbackChannel channel(
      [&service](const Frame& request) { return service.Handle(request); });
  RingClient client(&channel);

  Result<RingClient::HelloReply> hello = client.Hello();
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(hello->alive_count, spec.peers);

  RingClient* clients[] = {&client};
  RunCorpusOverChannels({clients[0]}, ins, case_seed, oracle, "loopback");
  EXPECT_GT(channel.stats().wire_bytes_sent, 0u);
  EXPECT_GT(channel.stats().wire_bytes_received, 0u);
}

TEST_P(TransportConformanceTest, TwoProcessWireMatchesOracle) {
  const uint64_t case_seed = DeriveTaskSeed(kCorpusSeed, GetParam());
  const DeploymentSpec spec = SpecForCase(case_seed);
  const InsertSpec ins = InsertForCase(case_seed);
  OracleRun oracle = RunOracle(spec, ins, case_seed);
  ASSERT_GE(oracle.dep->ring->AliveCount(), 8u);

  std::unique_ptr<NodeProcess> node_a = NodeProcess::Launch(NodeArgs(spec));
  std::unique_ptr<NodeProcess> node_b = NodeProcess::Launch(NodeArgs(spec));
  ASSERT_NE(node_a, nullptr) << "failed to launch ringdde_node A";
  ASSERT_NE(node_b, nullptr) << "failed to launch ringdde_node B";

  SocketRpcChannel channel_a(node_a->port());
  SocketRpcChannel channel_b(node_b->port());
  RingClient client_a(&channel_a);
  RingClient client_b(&channel_b);

  // Replica shards must agree before any command.
  Result<RingClient::HelloReply> hello_a = client_a.Hello();
  Result<RingClient::HelloReply> hello_b = client_b.Hello();
  ASSERT_TRUE(hello_a.ok()) << hello_a.status().ToString();
  ASSERT_TRUE(hello_b.ok()) << hello_b.status().ToString();
  EXPECT_EQ(hello_a->fingerprint, hello_b->fingerprint);
  {
    // ...and with a locally built replica of the same spec (the oracle's
    // ring has already advanced past the corpus, so rebuild fresh).
    Result<std::unique_ptr<Deployment>> fresh = BuildDeployment(spec);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(hello_a->fingerprint, RingFingerprint(*(*fresh)->ring));
  }

  // The 8 queriers are partitioned across the two processes inside
  // RunCorpusOverChannels (q % 2).
  RunCorpusOverChannels({&client_a, &client_b}, ins, case_seed, oracle,
                        "wire");

  EXPECT_GT(channel_a.stats().rpcs_sent, 0u);
  EXPECT_GT(channel_b.stats().rpcs_sent, 0u);
  EXPECT_GT(channel_a.stats().wire_bytes_received, 0u);

  EXPECT_TRUE(client_a.Shutdown().ok());
  EXPECT_TRUE(client_b.Shutdown().ok());
}

INSTANTIATE_TEST_SUITE_P(Corpus, TransportConformanceTest,
                         ::testing::Range(0, 3));

// A deliberately hung "peer" — a bare listener that accepts into its
// backlog but never reads or replies — must fail the RPC by deadline, not
// wedge the suite.
TEST(TransportReliabilityTest, DeadlineFiresOnSilentPeer) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral, like every socket in this suite
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len),
            0);
  ASSERT_EQ(::listen(fd, 4), 0);

  SocketChannelOptions opts;
  opts.rpc_deadline_seconds = 0.3;
  opts.max_attempts = 1;
  SocketRpcChannel channel(ntohs(addr.sin_port), opts);
  Frame request;
  request.type = static_cast<uint8_t>(RpcType::kHello);
  Result<Frame> reply = channel.Call(request);
  EXPECT_FALSE(reply.ok());
  EXPECT_TRUE(reply.status().IsTimedOut()) << reply.status().ToString();
  ::close(fd);
}

}  // namespace
}  // namespace ringdde
