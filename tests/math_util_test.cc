#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ringdde {
namespace {

TEST(KahanSumTest, CompensatesSmallIncrements) {
  KahanSum acc;
  acc.Add(1.0);
  for (int i = 0; i < 1000000; ++i) acc.Add(1e-16);
  EXPECT_NEAR(acc.value(), 1.0 + 1e-10, 1e-13);
}

TEST(KahanSumTest, ResetClears) {
  KahanSum acc;
  acc.Add(5.0);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(MeanVarianceTest, KnownValues) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(Stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MeanVarianceTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(LerpClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStats) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.75), 7.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(UpperIndexTest, FindsLastLeq) {
  std::vector<double> xs{1.0, 3.0, 5.0};
  EXPECT_EQ(UpperIndex(xs, 0.5), -1);
  EXPECT_EQ(UpperIndex(xs, 1.0), 0);
  EXPECT_EQ(UpperIndex(xs, 4.0), 1);
  EXPECT_EQ(UpperIndex(xs, 9.0), 2);
}

TEST(Log1pExpTest, StableAcrossRange) {
  EXPECT_NEAR(Log1pExp(0.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(Log1pExp(100.0), 100.0, 1e-9);
  EXPECT_NEAR(Log1pExp(-100.0), std::exp(-100.0), 1e-40);
}

TEST(ApproxEqualTest, RelativeTolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 + 1.0));
}

TEST(NormalCdfTest, KnownPoints) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(NormalPdfTest, PeakValue) {
  EXPECT_NEAR(StandardNormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(StandardNormalPdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(InverseNormalCdfTest, RoundTripsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double z = InverseStandardNormalCdf(p);
    EXPECT_NEAR(StandardNormalCdf(z), p, 1e-10) << "p=" << p;
  }
}

TEST(InverseNormalCdfTest, Symmetry) {
  EXPECT_NEAR(InverseStandardNormalCdf(0.5), 0.0, 1e-12);
  EXPECT_NEAR(InverseStandardNormalCdf(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(InverseStandardNormalCdf(0.3),
              -InverseStandardNormalCdf(0.7), 1e-10);
}

TEST(SumPreciseTest, MatchesKahan) {
  std::vector<double> xs(100000, 0.1);
  EXPECT_NEAR(SumPrecise(xs), 10000.0, 1e-9);
}

}  // namespace
}  // namespace ringdde
