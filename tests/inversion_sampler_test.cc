#include "core/inversion_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace ringdde {
namespace {

TEST(InversionSamplerTest, UniformCdfGivesUniformSamples) {
  PiecewiseLinearCdf cdf;  // default uniform
  InversionSampler sampler(&cdf);
  Rng rng(1);
  const auto xs = sampler.SampleMany(20000, rng);
  double sum = 0.0;
  for (double x : xs) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / xs.size(), 0.5, 0.01);
}

TEST(InversionSamplerTest, SamplesFollowTheCdf) {
  // CDF with 80% of mass in [0, 0.2].
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.2, 0.8}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  InversionSampler sampler(&*cdf);
  Rng rng(2);
  const auto xs = sampler.SampleMany(20000, rng);
  const double frac_low =
      static_cast<double>(std::count_if(xs.begin(), xs.end(),
                                        [](double x) { return x <= 0.2; })) /
      xs.size();
  EXPECT_NEAR(frac_low, 0.8, 0.01);
}

TEST(InversionSamplerTest, StratifiedHasLowerDiscrepancy) {
  PiecewiseLinearCdf cdf;
  InversionSampler sampler(&cdf);
  Rng rng(3);
  const size_t k = 1000;
  auto strat = sampler.SampleStratified(k, rng);
  std::sort(strat.begin(), strat.end());
  double ks_strat = 0.0;
  for (size_t i = 0; i < k; ++i) {
    ks_strat = std::max(
        ks_strat, std::fabs((i + 1.0) / k - strat[i]));
  }
  // One point per stratum: discrepancy bounded by 1/k (plus epsilon),
  // far below the ~1/sqrt(k) of i.i.d. draws.
  EXPECT_LT(ks_strat, 2.5 / k + 1e-9);
}

TEST(InversionSamplerTest, StratifiedCoversEveryStratum) {
  PiecewiseLinearCdf cdf;
  InversionSampler sampler(&cdf);
  Rng rng(4);
  const auto xs = sampler.SampleStratified(10, rng);
  ASSERT_EQ(xs.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_GE(xs[i], i / 10.0 - 1e-12);
    EXPECT_LE(xs[i], (i + 1) / 10.0 + 1e-12);
  }
}

TEST(InversionSamplerTest, EvenQuantilesDeterministic) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  InversionSampler sampler(&*cdf);
  const auto qs = sampler.EvenQuantiles(4);
  ASSERT_EQ(qs.size(), 4u);
  EXPECT_NEAR(qs[0], 0.125, 1e-12);
  EXPECT_NEAR(qs[3], 0.875, 1e-12);
  EXPECT_EQ(sampler.EvenQuantiles(4), qs);  // no randomness
}

TEST(InversionSamplerTest, AtomicMassSampledAtAtom) {
  // Near-vertical ramp at 0.5 carrying all mass.
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.4999999, 0.0}, {0.5000001, 1.0}});
  ASSERT_TRUE(cdf.ok());
  InversionSampler sampler(&*cdf);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(sampler.Sample(rng), 0.5, 1e-5);
  }
}

}  // namespace
}  // namespace ringdde
