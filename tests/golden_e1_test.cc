// Golden end-to-end regression: one tiny, fully pinned E1-style run.
//
// The whole stack — dataset generation, ring construction, probing over
// the fallible TrySend path (with fault injection OFF), reconstruction,
// and cost accounting — must reproduce these numbers bit-for-bit on every
// platform, thread count, and future revision. A drift here means the
// fault layer (or anything else) silently changed fault-free behavior,
// which the zero-cost-off contract forbids.
//
// The golden values were captured from the first build of this test and
// are locked at 1e-9; cost counters are integers and must match exactly.
#include <gtest/gtest.h>

#include "bench_util.h"

namespace ringdde::bench {
namespace {

TEST(GoldenE1Test, TinyRunIsBitStable) {
  // n=256 peers, 10k items from TruncatedNormal(0.5, 0.15), m=64 probes.
  auto env = BuildEnv(
      256, std::make_unique<TruncatedNormalDistribution>(0.5, 0.15), 10000,
      /*seed=*/42);

  DdeOptions opts;
  opts.num_probes = 64;
  opts.seed = 7;
  DistributionFreeEstimator estimator(env->ring.get(), opts);
  Rng rng(9);
  Result<NodeAddr> querier = env->ring->RandomAliveNode(rng);
  ASSERT_TRUE(querier.ok());
  Result<DensityEstimate> e = estimator.Estimate(*querier);
  ASSERT_TRUE(e.ok()) << e.status().ToString();

  const AccuracyReport acc = CompareCdfToTruth(e->cdf, *env->dist);

  // --- golden values ---
  EXPECT_NEAR(acc.ks, 0.01765600967989589, 1e-9);
  EXPECT_NEAR(acc.l1_cdf, 0.0044233961354768541, 1e-9);
  EXPECT_NEAR(e->covered_fraction, 0.31584580304807031, 1e-9);
  EXPECT_NEAR(e->estimated_total_items, 9902.8378935642831, 1e-9);
  EXPECT_EQ(e->peers_probed, 51u);
  EXPECT_EQ(e->cost.messages, 490u);
  EXPECT_EQ(e->cost.hops, 245u);
  EXPECT_EQ(e->cost.bytes, 49501u);

  // Fault machinery must be invisible on this fault-free run.
  EXPECT_EQ(e->failed_probes, 0u);
  EXPECT_EQ(e->retries, 0u);
  EXPECT_EQ(e->timeouts, 0u);
  EXPECT_EQ(env->net->counters().timeouts, 0u);
  EXPECT_EQ(env->net->lost_messages(), 0u);
}

}  // namespace
}  // namespace ringdde::bench
