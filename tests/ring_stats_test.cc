#include "ring/ring_stats.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/math_util.h"

namespace ringdde {
namespace {

TEST(GiniTest, PerfectEqualityIsZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-12);
}

TEST(GiniTest, TotalConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  EXPECT_NEAR(GiniCoefficient(v), 0.99, 1e-9);  // (n-1)/n
}

TEST(GiniTest, KnownTwoValueCase) {
  // {1, 3}: gini = 0.25.
  EXPECT_NEAR(GiniCoefficient({1.0, 3.0}), 0.25, 1e-12);
}

TEST(GiniTest, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
}

class RingStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(200).ok());
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
      ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
    }
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(RingStatsTest, ArcsSumToOne) {
  const auto arcs = NodeArcs(*ring_);
  ASSERT_EQ(arcs.size(), 200u);
  EXPECT_NEAR(SumPrecise(arcs), 1.0, 1e-9);
  for (double a : arcs) EXPECT_GT(a, 0.0);
}

TEST_F(RingStatsTest, LoadsSumToTotalItems) {
  const auto loads = NodeLoads(*ring_);
  uint64_t total = 0;
  for (uint64_t l : loads) total += l;
  EXPECT_EQ(total, ring_->TotalItems());
}

TEST_F(RingStatsTest, SummaryFieldsConsistent) {
  const RingStatsSummary s = ComputeRingStats(*ring_);
  EXPECT_EQ(s.alive_nodes, 200u);
  EXPECT_EQ(s.total_items, 10000u);
  EXPECT_NEAR(s.mean_arc, 1.0 / 200.0, 1e-12);
  EXPECT_LE(s.min_arc, s.mean_arc);
  EXPECT_GE(s.max_arc, s.mean_arc);
  EXPECT_NEAR(s.mean_load, 50.0, 1e-9);
  EXPECT_LE(s.min_load, 50u);
  EXPECT_GE(s.max_load, 50u);
  // Uniform data over exponential-ish arcs: substantial but bounded
  // imbalance.
  EXPECT_GT(s.load_gini, 0.2);
  EXPECT_LT(s.load_gini, 0.8);
}

TEST_F(RingStatsTest, SingleNodeDegenerates) {
  Network net;
  ChordRing lone(&net);
  ASSERT_TRUE(lone.CreateNetwork(1).ok());
  const auto arcs = NodeArcs(lone);
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_DOUBLE_EQ(arcs[0], 1.0);
  const RingStatsSummary s = ComputeRingStats(lone);
  EXPECT_EQ(s.alive_nodes, 1u);
  EXPECT_DOUBLE_EQ(s.load_gini, 0.0);
}

}  // namespace
}  // namespace ringdde
