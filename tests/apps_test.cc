#include <gtest/gtest.h>

#include <memory>

#include "apps/equidepth_partitioner.h"
#include "apps/load_balance.h"
#include "apps/selectivity.h"
#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  void Build(const Distribution& dist, size_t n = 512,
             size_t items = 50000) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(1);
    const Dataset ds = GenerateDataset(dist, items, rng);
    ring_->InsertDatasetBulk(ds.keys);
  }

  DensityEstimate Estimate(size_t probes = 256) {
    DdeOptions opts;
    opts.num_probes = probes;
    DistributionFreeEstimator est(ring_.get(), opts);
    auto e = est.Estimate(ring_->AliveAddrs()[0]);
    EXPECT_TRUE(e.ok());
    return std::move(*e);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(AppsTest, ExactSelectivityMatchesConstruction) {
  UniformDistribution dist;
  Build(dist);
  EXPECT_NEAR(ExactSelectivity(*ring_, 0.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(ExactSelectivity(*ring_, 0.2, 0.7), 0.5, 0.01);
  EXPECT_DOUBLE_EQ(ExactSelectivity(*ring_, 0.5, 0.5), 0.0);
  // Swapped bounds are normalized.
  EXPECT_DOUBLE_EQ(ExactSelectivity(*ring_, 0.7, 0.2),
                   ExactSelectivity(*ring_, 0.2, 0.7));
}

TEST_F(AppsTest, SelectivityEstimatorTracksExact) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(dist);
  const DensityEstimate e = Estimate();
  SelectivityEstimator sel(&e.cdf);
  for (auto [lo, hi] : std::vector<std::pair<double, double>>{
           {0.4, 0.6}, {0.0, 0.5}, {0.45, 0.55}, {0.8, 1.0}}) {
    EXPECT_NEAR(sel.EstimateFraction(lo, hi),
                ExactSelectivity(*ring_, lo, hi), 0.03)
        << lo << ".." << hi;
  }
}

TEST_F(AppsTest, SelectivityCountUsesTotal) {
  UniformDistribution dist;
  Build(dist);
  const DensityEstimate e = Estimate();
  SelectivityEstimator sel(&e.cdf);
  EXPECT_NEAR(sel.EstimateCount(0.0, 0.5, e.estimated_total_items),
              25000.0, 3000.0);
}

TEST_F(AppsTest, GenerateRangeQueriesWellFormed) {
  Rng rng(2);
  const auto qs = GenerateRangeQueries(500, 0.1, rng);
  ASSERT_EQ(qs.size(), 500u);
  for (const auto& q : qs) {
    EXPECT_LE(q.lo, q.hi);
    EXPECT_GE(q.lo, 0.0);
    EXPECT_LE(q.hi, 1.0);
  }
}

TEST_F(AppsTest, EvaluateSelectivityReportsSmallErrorsForGoodEstimate) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(dist);
  const DensityEstimate e = Estimate();
  Rng rng(3);
  const auto qs = GenerateRangeQueries(200, 0.1, rng);
  const SelectivityEvalResult r = EvaluateSelectivity(e.cdf, *ring_, qs);
  EXPECT_LT(r.mean_abs_error, 0.02);
  EXPECT_LT(r.p95_abs_error, 0.05);
  EXPECT_GE(r.p95_abs_error, r.mean_abs_error);
}

TEST_F(AppsTest, ExactLoadBalanceMatchesRingStats) {
  ZipfDistribution dist(1000, 0.9);
  Build(dist);
  const LoadBalanceReport r = ExactLoadBalance(*ring_);
  EXPECT_GT(r.gini, 0.3);  // skewed data on uniform arcs: imbalanced
  EXPECT_GT(r.max_over_avg, 2.0);
  EXPECT_NEAR(r.mean_load, 50000.0 / 512.0, 1e-6);
}

TEST_F(AppsTest, PredictedLoadsSumToEstimatedTotal) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(dist);
  const DensityEstimate e = Estimate();
  const auto loads = PredictNodeLoads(*ring_, e.cdf, e.estimated_total_items);
  ASSERT_EQ(loads.size(), 512u);
  double sum = 0.0;
  for (double l : loads) sum += l;
  EXPECT_NEAR(sum, e.estimated_total_items, e.estimated_total_items * 0.01);
}

TEST_F(AppsTest, PredictedImbalanceTracksTruth) {
  ZipfDistribution dist(1000, 0.9);
  Build(dist);
  const DensityEstimate e = Estimate(512);
  const LoadBalanceReport truth = ExactLoadBalance(*ring_);
  const LoadBalanceReport pred =
      PredictLoadBalance(*ring_, e.cdf, e.estimated_total_items);
  EXPECT_NEAR(pred.gini, truth.gini, 0.12);
  EXPECT_NEAR(pred.mean_load, truth.mean_load, truth.mean_load * 0.1);
}

TEST_F(AppsTest, LoadPredictionErrorSmallWithGoodEstimate) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(dist);
  const DensityEstimate e = Estimate(512);
  EXPECT_LT(MeanLoadPredictionError(*ring_, e.cdf, e.estimated_total_items),
            0.35);
}

TEST_F(AppsTest, ProposeBoundariesCountAndOrder) {
  UniformDistribution dist;
  Build(dist);
  const DensityEstimate e = Estimate();
  const auto bounds = ProposePartitionBoundaries(e.cdf, 8);
  ASSERT_EQ(bounds.size(), 7u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST_F(AppsTest, EquiDepthPartitionsBalanceSkewedData) {
  ZipfDistribution dist(1000, 1.0);
  Build(dist);
  const DensityEstimate e = Estimate(512);
  const auto bounds = ProposePartitionBoundaries(e.cdf, 16);
  const auto shares = MeasurePartitionShares(*ring_, bounds);
  ASSERT_EQ(shares.size(), 16u);
  const PartitionQuality q = EvaluatePartitionShares(shares);
  // Ideal share 1/16 = 0.0625; a good estimate keeps the worst partition
  // within ~2x ideal. Naive equal-width would leave one partition with
  // most of the mass (imbalance ~ 16).
  EXPECT_LT(q.imbalance, 2.5);
  // Contrast: equal-width boundaries on the same data.
  std::vector<double> naive;
  for (int i = 1; i < 16; ++i) naive.push_back(i / 16.0);
  const PartitionQuality naive_q =
      EvaluatePartitionShares(MeasurePartitionShares(*ring_, naive));
  EXPECT_GT(naive_q.imbalance, q.imbalance * 2);
}

TEST_F(AppsTest, PartitionSharesSumToOne) {
  TruncatedExponentialDistribution dist(5.0);
  Build(dist);
  const DensityEstimate e = Estimate();
  const auto shares =
      MeasurePartitionShares(*ring_, ProposePartitionBoundaries(e.cdf, 10));
  double sum = 0.0;
  for (double s : shares) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(AppsTest, SinglePartitionDegenerate) {
  UniformDistribution dist;
  Build(dist, 64, 1000);
  const DensityEstimate e = Estimate(32);
  const auto bounds = ProposePartitionBoundaries(e.cdf, 1);
  EXPECT_TRUE(bounds.empty());
  const auto shares = MeasurePartitionShares(*ring_, bounds);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_NEAR(shares[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace ringdde
