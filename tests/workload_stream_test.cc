#include "core/workload_stream.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/maintenance.h"
#include "data/dataset.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

class WorkloadStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(256).ok());
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(WorkloadStreamTest, InsertRateMatchesPoissonExpectation) {
  WorkloadStreamOptions opts;
  opts.inserts_per_second = 100.0;
  WorkloadStream stream(ring_.get(),
                        std::make_unique<UniformDistribution>(), opts);
  stream.Start();
  net_->events().RunUntil(100.0);
  // 100/s for 100s: ~10000 +- a few percent.
  EXPECT_NEAR(static_cast<double>(stream.inserts()), 10000.0, 500.0);
  EXPECT_EQ(ring_->TotalItems(), stream.inserts());
}

TEST_F(WorkloadStreamTest, BalancedRatesKeepSizeStationary) {
  Rng rng(1);
  UniformDistribution dist;
  const Dataset ds = GenerateDataset(dist, 10000, rng);
  ring_->InsertDatasetBulk(ds.keys);

  WorkloadStreamOptions opts;
  opts.inserts_per_second = 50.0;
  opts.deletes_per_second = 50.0;
  WorkloadStream stream(ring_.get(),
                        std::make_unique<UniformDistribution>(), opts);
  stream.TrackExistingKeys(ds.keys);
  stream.Start();
  net_->events().RunUntil(200.0);
  EXPECT_GT(stream.deletes(), 5000u);
  EXPECT_NEAR(static_cast<double>(ring_->TotalItems()), 10000.0, 600.0);
  EXPECT_EQ(ring_->TotalItems(), stream.live_keys());
}

TEST_F(WorkloadStreamTest, DeletesRemoveRealKeys) {
  Rng rng(2);
  UniformDistribution dist;
  const Dataset ds = GenerateDataset(dist, 1000, rng);
  ring_->InsertDatasetBulk(ds.keys);
  WorkloadStreamOptions opts;
  opts.inserts_per_second = 0.0;
  opts.deletes_per_second = 100.0;
  WorkloadStream stream(ring_.get(),
                        std::make_unique<UniformDistribution>(), opts);
  stream.TrackExistingKeys(ds.keys);
  stream.Start();
  net_->events().RunUntil(5.0);
  EXPECT_EQ(ring_->TotalItems(), 1000u - stream.deletes());
}

TEST_F(WorkloadStreamTest, DistributionDriftIsTrackedByMaintenance) {
  // Start left-heavy; stream churns the data toward right-heavy while a
  // maintainer refreshes. The estimate must follow the drift.
  Rng rng(3);
  TruncatedNormalDistribution left(0.25, 0.06);
  const Dataset ds = GenerateDataset(left, 20000, rng);
  ring_->InsertDatasetBulk(ds.keys);

  WorkloadStreamOptions opts;
  opts.inserts_per_second = 400.0;
  opts.deletes_per_second = 400.0;
  WorkloadStream stream(
      ring_.get(), std::make_unique<TruncatedNormalDistribution>(0.25, 0.06),
      opts);
  stream.TrackExistingKeys(ds.keys);
  stream.Start();

  DdeOptions dopts;
  dopts.num_probes = 128;
  MaintenanceOptions mopts;
  mopts.refresh_period_seconds = 20.0;
  EstimateMaintainer maintainer(ring_.get(), dopts, mopts);
  ASSERT_TRUE(maintainer.Start(ring_->AliveAddrs()[0]).ok());

  net_->events().RunUntil(30.0);
  ASSERT_TRUE(maintainer.current().has_value());
  const double median_before = maintainer.current()->Quantile(0.5);
  EXPECT_NEAR(median_before, 0.25, 0.05);

  // Drift: new inserts now land right-heavy; deletes erode the old mass.
  stream.SetInsertDistribution(
      std::make_unique<TruncatedNormalDistribution>(0.8, 0.05));
  net_->events().RunUntil(130.0);  // ~40k updates over a 20k dataset
  ASSERT_TRUE(maintainer.current().has_value());
  const double median_after = maintainer.current()->Quantile(0.5);
  EXPECT_GT(median_after, 0.5);  // majority of mass has moved right
}

TEST_F(WorkloadStreamTest, EraseBulkAndRoutedWork) {
  ASSERT_TRUE(ring_->InsertKeyBulk(0.42).ok());
  EXPECT_TRUE(ring_->EraseKeyBulk(0.42).ok());
  EXPECT_TRUE(ring_->EraseKeyBulk(0.42).IsNotFound());

  ASSERT_TRUE(ring_->InsertKeyBulk(0.77).ok());
  const NodeAddr from = ring_->AliveAddrs()[0];
  const uint64_t msgs = net_->counters().messages;
  EXPECT_TRUE(ring_->EraseKeyRouted(from, 0.77).ok());
  EXPECT_GT(net_->counters().messages, msgs);
  EXPECT_EQ(ring_->TotalItems(), 0u);
}

}  // namespace
}  // namespace ringdde
