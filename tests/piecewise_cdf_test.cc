#include "stats/piecewise_cdf.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace ringdde {
namespace {

using Knot = PiecewiseLinearCdf::Knot;

TEST(PiecewiseCdfTest, DefaultIsUniform) {
  PiecewiseLinearCdf cdf;
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.25), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Inverse(0.7), 0.7);
  EXPECT_DOUBLE_EQ(cdf.DensityAt(0.5), 1.0);
}

TEST(PiecewiseCdfTest, FromKnotsValidates) {
  EXPECT_FALSE(PiecewiseLinearCdf::FromKnots({{0.0, 0.0}}).ok());
  EXPECT_FALSE(
      PiecewiseLinearCdf::FromKnots({{0.5, 0.0}, {0.5, 1.0}}).ok());
  EXPECT_FALSE(
      PiecewiseLinearCdf::FromKnots({{0.0, 0.5}, {1.0, 0.2}}).ok());
  EXPECT_FALSE(
      PiecewiseLinearCdf::FromKnots({{0.0, -0.5}, {1.0, 1.0}}).ok());
  EXPECT_TRUE(
      PiecewiseLinearCdf::FromKnots({{0.0, 0.0}, {1.0, 1.0}}).ok());
}

TEST(PiecewiseCdfTest, EvaluateInterpolatesAndClamps) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.2, 0.0}, {0.4, 0.5}, {0.8, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.3), 0.25);  // mid segment 1
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.4), 0.5);
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.6), 0.75);
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.9), 1.0);   // clamp right
}

TEST(PiecewiseCdfTest, InverseInterpolates) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.2, 0.0}, {0.4, 0.5}, {0.8, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->Inverse(0.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf->Inverse(0.25), 0.3);
  EXPECT_DOUBLE_EQ(cdf->Inverse(0.5), 0.4);
  EXPECT_DOUBLE_EQ(cdf->Inverse(1.0), 0.8);
}

TEST(PiecewiseCdfTest, InverseOfFlatSegmentIsLeftmost) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.4, 0.5}, {0.6, 0.5}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->Inverse(0.5), 0.4);
}

TEST(PiecewiseCdfTest, EvaluateInverseRoundTrip) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.3, 0.2}, {0.5, 0.9}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  for (double p : {0.05, 0.2, 0.5, 0.85, 0.95}) {
    EXPECT_NEAR(cdf->Evaluate(cdf->Inverse(p)), p, 1e-12);
  }
}

TEST(PiecewiseCdfTest, DensityIsSegmentSlope) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.5, 0.25}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->DensityAt(0.25), 0.5);
  EXPECT_DOUBLE_EQ(cdf->DensityAt(0.75), 1.5);
  EXPECT_DOUBLE_EQ(cdf->DensityAt(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(cdf->DensityAt(1.1), 0.0);
}

TEST(PiecewiseCdfTest, DensityAtKnotEndpoints) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.5, 0.25}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->DensityAt(0.0), 0.5);   // first segment
  EXPECT_DOUBLE_EQ(cdf->DensityAt(1.0), 1.5);   // last segment
}

TEST(PiecewiseCdfTest, FromSamplesSpansZeroToOne) {
  auto cdf = PiecewiseLinearCdf::FromSamples({0.5, 0.1, 0.9, 0.3});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.05), 0.0);
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.95), 1.0);
  EXPECT_TRUE(cdf->IsNormalized());
}

TEST(PiecewiseCdfTest, FromSamplesHandlesDuplicates) {
  auto cdf = PiecewiseLinearCdf::FromSamples({0.5, 0.5, 0.5, 0.9});
  ASSERT_TRUE(cdf.ok());
  // F(0.5) = 0.75 (3 of 4 samples), then a linear ramp to F(0.9) = 1:
  // Evaluate(0.7) interpolates halfway.
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.7), 0.875);
}

TEST(PiecewiseCdfTest, FromSamplesAllIdentical) {
  auto cdf = PiecewiseLinearCdf::FromSamples({0.4, 0.4, 0.4});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.39), 0.0);
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.41), 1.0);
}

TEST(PiecewiseCdfTest, FromSamplesNeedsTwo) {
  EXPECT_FALSE(PiecewiseLinearCdf::FromSamples({0.5}).ok());
  EXPECT_FALSE(PiecewiseLinearCdf::FromSamples({}).ok());
}

TEST(PiecewiseCdfTest, FromSamplesApproximatesTrueCdf) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.UniformDouble());
  auto cdf = PiecewiseLinearCdf::FromSamples(xs);
  ASSERT_TRUE(cdf.ok());
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(cdf->Evaluate(x), x, 0.02);
  }
}

TEST(PiecewiseCdfTest, MakeMonotoneSortsClampsAndDedupes) {
  std::vector<Knot> knots{{0.5, 0.9}, {0.2, 0.3}, {0.5, 0.4},
                          {0.8, 0.2}, {1.0, 1.4}};
  PiecewiseLinearCdf::MakeMonotone(knots);
  ASSERT_EQ(knots.size(), 4u);
  // Sorted x, duplicate 0.5 merged with max f, running max applied.
  EXPECT_DOUBLE_EQ(knots[0].x, 0.2);
  EXPECT_DOUBLE_EQ(knots[1].x, 0.5);
  EXPECT_DOUBLE_EQ(knots[1].f, 0.9);
  EXPECT_DOUBLE_EQ(knots[2].f, 0.9);  // 0.2 raised by running max
  EXPECT_DOUBLE_EQ(knots[3].f, 1.0);  // clamped
  EXPECT_TRUE(PiecewiseLinearCdf::FromKnots(knots).ok());
}

TEST(PiecewiseCdfTest, NormalizeRescales) {
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.2}, {0.5, 0.4}, {1.0, 0.6}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_FALSE(cdf->IsNormalized());
  cdf->Normalize();
  EXPECT_TRUE(cdf->IsNormalized());
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.5), 0.5);
}

TEST(PiecewiseCdfTest, NormalizeDegenerateIsNoop) {
  auto cdf = PiecewiseLinearCdf::FromKnots({{0.0, 0.5}, {1.0, 0.5}});
  ASSERT_TRUE(cdf.ok());
  cdf->Normalize();  // must not divide by zero
  EXPECT_DOUBLE_EQ(cdf->Evaluate(0.5), 0.5);
}

TEST(PiecewiseCdfTest, ResampledApproximatesOriginal) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Normal(0.5, 0.1));
  auto cdf = PiecewiseLinearCdf::FromSamples(xs);
  ASSERT_TRUE(cdf.ok());
  const PiecewiseLinearCdf small = cdf->Resampled(64);
  EXPECT_LE(small.knots().size(), 64u);
  for (int i = 0; i <= 100; ++i) {
    const double x = i / 100.0;
    EXPECT_NEAR(small.Evaluate(x), cdf->Evaluate(x), 0.02) << x;
  }
}

TEST(PiecewiseCdfTest, ResampledIsNoopWhenAlreadySmall) {
  auto cdf = PiecewiseLinearCdf::FromKnots({{0.0, 0.0}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_EQ(cdf->Resampled(64).knots().size(), 2u);
}

TEST(PiecewiseCdfTest, ResampledKeepsEndpoints) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.UniformDouble(0.2, 0.8));
  auto cdf = PiecewiseLinearCdf::FromSamples(xs);
  ASSERT_TRUE(cdf.ok());
  const PiecewiseLinearCdf small = cdf->Resampled(16);
  EXPECT_DOUBLE_EQ(small.Evaluate(small.x_min()), 0.0);
  EXPECT_DOUBLE_EQ(small.Evaluate(1.0), 1.0);
  EXPECT_NEAR(small.x_min(), cdf->x_min(), 1e-9);
  EXPECT_NEAR(small.x_max(), cdf->x_max(), 1e-9);
}

TEST(PiecewiseCdfTest, XMinMaxExposed) {
  auto cdf =
      PiecewiseLinearCdf::FromKnots({{0.1, 0.0}, {0.9, 1.0}});
  ASSERT_TRUE(cdf.ok());
  EXPECT_DOUBLE_EQ(cdf->x_min(), 0.1);
  EXPECT_DOUBLE_EQ(cdf->x_max(), 0.9);
}

}  // namespace
}  // namespace ringdde
