#include "ring/chord_ring.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ring/node.h"
#include "sim/network.h"

namespace ringdde {
namespace {

class RingTest : public ::testing::Test {
 protected:
  void Build(size_t n, RingOptions opts = {}) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get(), opts);
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(RingTest, CreateNetworkPopulatesAliveNodes) {
  Build(64);
  EXPECT_EQ(ring_->AliveCount(), 64u);
  EXPECT_EQ(ring_->AliveAddrs().size(), 64u);
  for (NodeAddr a : ring_->AliveAddrs()) EXPECT_TRUE(ring_->IsAlive(a));
}

TEST_F(RingTest, CreateRejectsZeroAndDoubleCreate) {
  net_ = std::make_unique<Network>();
  ring_ = std::make_unique<ChordRing>(net_.get());
  EXPECT_TRUE(ring_->CreateNetwork(0).IsInvalidArgument());
  ASSERT_TRUE(ring_->CreateNetwork(4).ok());
  EXPECT_EQ(ring_->CreateNetwork(4).code(), StatusCode::kFailedPrecondition);
}

TEST_F(RingTest, SuccessorListsAreConsistentAfterStabilize) {
  Build(32);
  for (NodeAddr a : ring_->AliveAddrs()) {
    const Node* node = ring_->GetNode(a);
    ASSERT_FALSE(node->successors().empty());
    // Successor 0 is the next node clockwise per the oracle.
    Result<NodeAddr> owner = ring_->OracleOwner(node->id() + 1);
    ASSERT_TRUE(owner.ok());
    EXPECT_EQ(node->successors()[0].addr, *owner);
  }
}

TEST_F(RingTest, PredecessorSuccessorInverse) {
  Build(32);
  for (NodeAddr a : ring_->AliveAddrs()) {
    const Node* node = ring_->GetNode(a);
    const Node* succ = ring_->GetNode(node->successors()[0].addr);
    EXPECT_EQ(succ->predecessor().addr, a);
  }
}

TEST_F(RingTest, ArcsTileTheRing) {
  Build(100);
  double total = 0.0;
  for (NodeAddr a : ring_->AliveAddrs()) {
    total += ring_->GetNode(a)->OwnedArcFraction();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(RingTest, OracleOwnerMatchesArcMembership) {
  Build(50);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const RingId target(rng.NextU64());
    Result<NodeAddr> owner = ring_->OracleOwner(target);
    ASSERT_TRUE(owner.ok());
    EXPECT_TRUE(ring_->GetNode(*owner)->Owns(target));
  }
}

TEST_F(RingTest, LookupAgreesWithOracle) {
  Build(128);
  Rng rng(7);
  const auto addrs = ring_->AliveAddrs();
  for (int i = 0; i < 200; ++i) {
    const NodeAddr from = addrs[rng.UniformU64(addrs.size())];
    const RingId target(rng.NextU64());
    Result<NodeAddr> routed = ring_->Lookup(from, target);
    Result<NodeAddr> oracle = ring_->OracleOwner(target);
    ASSERT_TRUE(routed.ok());
    EXPECT_EQ(*routed, *oracle);
  }
}

TEST_F(RingTest, LookupHopsAreLogarithmic) {
  Build(1024);
  Rng rng(11);
  const auto addrs = ring_->AliveAddrs();
  CostScope scope(net_->counters());
  const int kLookups = 200;
  for (int i = 0; i < kLookups; ++i) {
    const NodeAddr from = addrs[rng.UniformU64(addrs.size())];
    ASSERT_TRUE(ring_->Lookup(from, RingId(rng.NextU64())).ok());
  }
  const double mean_hops =
      static_cast<double>(scope.Delta().hops) / kLookups;
  // Theory: ~0.5*log2(1024) = 5; allow generous slack both ways.
  EXPECT_GT(mean_hops, 2.0);
  EXPECT_LT(mean_hops, 10.0);
}

TEST_F(RingTest, LookupChargesMessages) {
  Build(64);
  const uint64_t before = net_->counters().messages;
  ASSERT_TRUE(ring_->Lookup(ring_->AliveAddrs()[0], RingId(12345)).ok());
  EXPECT_GT(net_->counters().messages, before);
}

TEST_F(RingTest, LookupFromDeadNodeRejected) {
  Build(8);
  const NodeAddr victim = ring_->AliveAddrs()[3];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  EXPECT_TRUE(
      ring_->Lookup(victim, RingId(1)).status().IsInvalidArgument());
}

TEST_F(RingTest, SingleNodeOwnsEverything) {
  Build(1);
  const NodeAddr only = ring_->AliveAddrs()[0];
  Result<NodeAddr> owner = ring_->Lookup(only, RingId(0xDEADBEEF));
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, only);
  EXPECT_DOUBLE_EQ(ring_->GetNode(only)->OwnedArcFraction(), 1.0);
}

TEST_F(RingTest, BulkInsertRoutesToOwner) {
  Build(32);
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
  }
  EXPECT_EQ(ring_->TotalItems(), 500u);
  // Every key sits on the node owning its ring position.
  for (NodeAddr a : ring_->AliveAddrs()) {
    const Node* node = ring_->GetNode(a);
    for (double k : node->keys()) {
      EXPECT_TRUE(node->Owns(RingId::FromUnit(k)));
    }
  }
}

TEST_F(RingTest, RoutedInsertAlsoLandsOnOwner) {
  Build(32);
  const NodeAddr from = ring_->AliveAddrs()[0];
  ASSERT_TRUE(ring_->InsertKeyRouted(from, 0.37).ok());
  Result<NodeAddr> owner = ring_->OracleOwner(RingId::FromUnit(0.37));
  EXPECT_EQ(ring_->GetNode(*owner)->item_count(), 1u);
}

TEST_F(RingTest, JoinSplitsArcAndMovesData) {
  Build(16);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
  }
  const uint64_t items_before = ring_->TotalItems();
  Result<NodeAddr> fresh = ring_->Join(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(ring_->AliveCount(), 17u);
  EXPECT_EQ(ring_->TotalItems(), items_before);  // data conserved
  // The new node owns its keys.
  const Node* node = ring_->GetNode(*fresh);
  for (double k : node->keys()) {
    EXPECT_TRUE(node->Owns(RingId::FromUnit(k)));
  }
}

TEST_F(RingTest, JoinedNodeIsRoutable) {
  Build(16);
  Result<NodeAddr> fresh = ring_->Join(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(fresh.ok());
  const Node* node = ring_->GetNode(*fresh);
  // Lookup of the new node's own id must reach it (ring invariant holds
  // right after join even before global stabilization).
  Result<NodeAddr> owner =
      ring_->Lookup(ring_->AliveAddrs()[5], node->id());
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, *fresh);
}

TEST_F(RingTest, GracefulLeaveHandsDataToSuccessor) {
  Build(16);
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
  }
  const uint64_t before = ring_->TotalItems();
  const NodeAddr victim = ring_->AliveAddrs()[7];
  ASSERT_TRUE(ring_->Leave(victim).ok());
  EXPECT_FALSE(ring_->IsAlive(victim));
  EXPECT_EQ(ring_->AliveCount(), 15u);
  EXPECT_EQ(ring_->TotalItems(), before);
}

TEST_F(RingTest, CrashWithDurableDataPreservesItems) {
  RingOptions opts;
  opts.durable_data = true;
  Build(16, opts);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
  }
  const uint64_t before = ring_->TotalItems();
  ASSERT_TRUE(ring_->Crash(ring_->AliveAddrs()[3]).ok());
  EXPECT_EQ(ring_->TotalItems(), before);
}

TEST_F(RingTest, CrashWithoutDurabilityLosesItems) {
  RingOptions opts;
  opts.durable_data = false;
  Build(16, opts);
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
  }
  // Find a victim that actually stores something.
  NodeAddr victim = 0;
  for (NodeAddr a : ring_->AliveAddrs()) {
    if (ring_->GetNode(a)->item_count() > 0) {
      victim = a;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  const uint64_t before = ring_->TotalItems();
  ASSERT_TRUE(ring_->Crash(victim).ok());
  EXPECT_LT(ring_->TotalItems(), before);
}

TEST_F(RingTest, LastNodeCannotDepart) {
  Build(1);
  const NodeAddr only = ring_->AliveAddrs()[0];
  EXPECT_EQ(ring_->Leave(only).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ring_->Crash(only).code(), StatusCode::kFailedPrecondition);
}

TEST_F(RingTest, DepartedNodeCannotDepartAgain) {
  Build(4);
  const NodeAddr victim = ring_->AliveAddrs()[1];
  ASSERT_TRUE(ring_->Leave(victim).ok());
  EXPECT_TRUE(ring_->Leave(victim).IsNotFound());
  EXPECT_TRUE(ring_->Crash(victim).IsNotFound());
}

TEST_F(RingTest, RoutingSurvivesCrashesViaSuccessorLists) {
  Build(256);
  Rng rng(31);
  // Crash 20% without any stabilization.
  auto addrs = ring_->AliveAddrs();
  rng.Shuffle(addrs);
  for (size_t i = 0; i < 51; ++i) {
    ASSERT_TRUE(ring_->Crash(addrs[i]).ok());
  }
  const auto alive = ring_->AliveAddrs();
  int successes = 0;
  for (int i = 0; i < 100; ++i) {
    const NodeAddr from = alive[rng.UniformU64(alive.size())];
    Result<NodeAddr> owner = ring_->Lookup(from, RingId(rng.NextU64()));
    if (owner.ok()) {
      ++successes;
      EXPECT_TRUE(ring_->IsAlive(*owner));
    }
  }
  // Successor lists (size 8) tolerate far more than 20% random failures.
  EXPECT_EQ(successes, 100);
}

TEST_F(RingTest, StabilizeRepairsPointersAfterChurnBurst) {
  Build(128);
  Rng rng(37);
  for (int i = 0; i < 20; ++i) {
    // Random victims: crashing 20 CONSECUTIVE ids would legitimately defeat
    // an 8-deep successor list, which is not what this test is about.
    Result<NodeAddr> victim = ring_->RandomAliveNode(rng);
    ASSERT_TRUE(ring_->Crash(*victim).ok());
    Result<NodeAddr> bootstrap = ring_->RandomAliveNode(rng);
    ASSERT_TRUE(ring_->Join(*bootstrap).ok());
  }
  ring_->StabilizeAll();
  for (NodeAddr a : ring_->AliveAddrs()) {
    const Node* node = ring_->GetNode(a);
    Result<NodeAddr> succ = ring_->OracleOwner(node->id() + 1);
    EXPECT_EQ(node->successors()[0].addr, *succ);
    EXPECT_TRUE(ring_->IsAlive(node->predecessor().addr));
  }
}

TEST_F(RingTest, RandomAliveNodeReturnsAliveAddrs) {
  Build(16);
  Rng rng(41);
  for (int i = 0; i < 50; ++i) {
    Result<NodeAddr> a = ring_->RandomAliveNode(rng);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(ring_->IsAlive(*a));
  }
}

TEST(NodeTest, RankAndQuantiles) {
  Node node(1, RingId(0));
  node.InsertKeys({0.5, 0.1, 0.3, 0.9, 0.7});
  EXPECT_EQ(node.item_count(), 5u);
  EXPECT_EQ(node.RankOf(0.0), 0u);
  EXPECT_EQ(node.RankOf(0.4), 2u);
  EXPECT_EQ(node.RankOf(1.0), 5u);
  EXPECT_DOUBLE_EQ(node.LocalQuantile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(node.LocalQuantile(1.0), 0.9);
  EXPECT_DOUBLE_EQ(node.LocalQuantile(0.5), 0.5);
}

TEST(NodeTest, EraseKeyRemovesSingleOccurrence) {
  Node node(1, RingId(0));
  node.InsertKey(0.5);
  node.InsertKey(0.5);
  EXPECT_TRUE(node.EraseKey(0.5));
  EXPECT_EQ(node.item_count(), 1u);
  EXPECT_TRUE(node.EraseKey(0.5));
  EXPECT_FALSE(node.EraseKey(0.5));
}

TEST(NodeTest, ExtractKeysInArcMovesExactlyTheArc) {
  Node node(1, RingId(0));
  node.InsertKeys({0.1, 0.2, 0.3, 0.4, 0.5});
  const auto moved = node.ExtractKeysInArc(RingId::FromUnit(0.15),
                                           RingId::FromUnit(0.35));
  EXPECT_EQ(moved.size(), 2u);  // 0.2 and 0.3
  EXPECT_EQ(node.item_count(), 3u);
}

TEST(NodeTest, EvenQuantilesAscending) {
  Node node(1, RingId(0));
  for (int i = 0; i < 100; ++i) node.InsertKey(i / 100.0);
  const auto qs = node.EvenQuantiles(9);
  ASSERT_EQ(qs.size(), 9u);
  for (size_t i = 1; i < qs.size(); ++i) EXPECT_LE(qs[i - 1], qs[i]);
}

}  // namespace
}  // namespace ringdde
