#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

TEST(EquiWidthHistogramTest, AddAndTotalMass) {
  EquiWidthHistogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.1, 2.0);
  h.Add(0.9);
  EXPECT_DOUBLE_EQ(h.TotalMass(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_masses()[0], 3.0);
  EXPECT_DOUBLE_EQ(h.bin_masses()[3], 1.0);
}

TEST(EquiWidthHistogramTest, OutOfRangeClampsToEdgeBins) {
  EquiWidthHistogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.bin_masses()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bin_masses()[3], 1.0);
}

TEST(EquiWidthHistogramTest, UpperBoundGoesToLastBin) {
  EquiWidthHistogram h(0.0, 1.0, 4);
  h.Add(1.0);
  EXPECT_DOUBLE_EQ(h.bin_masses()[3], 1.0);
}

TEST(EquiWidthHistogramTest, PdfNormalized) {
  EquiWidthHistogram h(0.0, 1.0, 2);
  h.Add(0.25);
  h.Add(0.25);
  h.Add(0.75);
  // Bin width 0.5; bin 0 has 2/3 of the mass: pdf = (2/3)/0.5 = 4/3.
  EXPECT_NEAR(h.PdfAt(0.25), 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.PdfAt(0.75), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.PdfAt(-0.1), 0.0);
}

TEST(EquiWidthHistogramTest, CdfLinearWithinBins) {
  EquiWidthHistogram h(0.0, 1.0, 2);
  h.Add(0.25);
  h.Add(0.75);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.25), 0.25);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.75), 0.75);
  EXPECT_DOUBLE_EQ(h.CdfAt(1.0), 1.0);
}

TEST(EquiWidthHistogramTest, EmptyHistogramSafeDefaults) {
  EquiWidthHistogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.PdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(0.5), 0.0);
  EXPECT_FALSE(h.ToCdf().ok());
}

TEST(EquiWidthHistogramTest, MergeRequiresSameGeometry) {
  EquiWidthHistogram a(0.0, 1.0, 4);
  EquiWidthHistogram b(0.0, 1.0, 8);
  EXPECT_TRUE(a.Merge(b).IsInvalidArgument());
  EquiWidthHistogram c(0.0, 0.5, 4);
  EXPECT_TRUE(a.Merge(c).IsInvalidArgument());
}

TEST(EquiWidthHistogramTest, MergeAddsBinwise) {
  EquiWidthHistogram a(0.0, 1.0, 2);
  EquiWidthHistogram b(0.0, 1.0, 2);
  a.Add(0.25);
  b.Add(0.75, 3.0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.bin_masses()[0], 1.0);
  EXPECT_DOUBLE_EQ(a.bin_masses()[1], 3.0);
}

TEST(EquiWidthHistogramTest, ScaleMultiplies) {
  EquiWidthHistogram h(0.0, 1.0, 2);
  h.Add(0.25, 4.0);
  h.Scale(0.5);
  EXPECT_DOUBLE_EQ(h.TotalMass(), 2.0);
}

TEST(EquiWidthHistogramTest, ToCdfMatchesCdfAt) {
  Rng rng(3);
  EquiWidthHistogram h(0.0, 1.0, 32);
  for (int i = 0; i < 5000; ++i) h.Add(rng.UniformDouble() * 0.7);
  auto cdf = h.ToCdf();
  ASSERT_TRUE(cdf.ok());
  for (double x : {0.1, 0.3, 0.5, 0.69, 0.9}) {
    EXPECT_NEAR(cdf->Evaluate(x), h.CdfAt(x), 1e-9);
  }
}

TEST(EquiWidthHistogramTest, EncodedBytesScalesWithBins) {
  EquiWidthHistogram h(0.0, 1.0, 64);
  EXPECT_EQ(h.EncodedBytes(), 512u);
}

TEST(EquiDepthHistogramTest, BuildValidation) {
  EXPECT_FALSE(EquiDepthHistogram::Build({}, 4).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build({1.0}, 0).ok());
  EXPECT_TRUE(EquiDepthHistogram::Build({1.0, 2.0}, 2).ok());
}

TEST(EquiDepthHistogramTest, BoundariesAreQuantiles) {
  std::vector<double> xs;
  for (int i = 0; i <= 100; ++i) xs.push_back(i / 100.0);
  auto h = EquiDepthHistogram::Build(xs, 4);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->buckets(), 4u);
  EXPECT_NEAR(h->boundaries()[0], 0.0, 1e-9);
  EXPECT_NEAR(h->boundaries()[1], 0.25, 1e-9);
  EXPECT_NEAR(h->boundaries()[2], 0.5, 1e-9);
  EXPECT_NEAR(h->boundaries()[4], 1.0, 1e-9);
}

TEST(EquiDepthHistogramTest, SelectivityUniformData) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.UniformDouble());
  auto h = EquiDepthHistogram::Build(xs, 16);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateSelectivity(0.2, 0.6), 0.4, 0.02);
  EXPECT_NEAR(h->EstimateSelectivity(0.6, 0.2), 0.4, 0.02);  // swapped args
  EXPECT_NEAR(h->EstimateSelectivity(0.0, 1.0), 1.0, 1e-9);
}

TEST(EquiDepthHistogramTest, SkewedDataBoundariesFollowMass) {
  Rng rng(7);
  TruncatedExponentialDistribution d(8.0);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(d.Sample(rng));
  auto h = EquiDepthHistogram::Build(xs, 8);
  ASSERT_TRUE(h.ok());
  // Median boundary should be near the true median, far below 0.5.
  EXPECT_NEAR(h->boundaries()[4], d.Quantile(0.5), 0.01);
  EXPECT_LT(h->boundaries()[4], 0.2);
}

TEST(EquiDepthHistogramTest, HeavyDuplicatesStillWellFormed) {
  std::vector<double> xs(100, 0.5);
  xs.push_back(0.9);
  auto h = EquiDepthHistogram::Build(xs, 4);
  ASSERT_TRUE(h.ok());
  const auto& b = h->boundaries();
  for (size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

}  // namespace
}  // namespace ringdde
