// Tests for the ThreadPool primitive: exactly-once index execution,
// nested-loop degradation, exception propagation, and the determinism of
// per-task seed derivation.
#include "common/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace ringdde {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, RespectsBeginOffset) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(40, 100, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[i].load(), i >= 40 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsSeriallyInOrder) {
  ThreadPool pool(0);
  std::vector<size_t> order;
  pool.ParallelFor(0, 64, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(3);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 32;
  std::atomic<size_t> total{0};
  std::atomic<int> nested_in_worker{0};
  // Gate every outer task until a pool thread has claimed one, so the
  // inline nested path is exercised even on a single-core machine (where
  // the caller could otherwise drain the whole loop before a worker
  // wakes).
  std::mutex mu;
  std::condition_variable cv;
  bool worker_claimed = false;
  pool.ParallelFor(0, kOuter, [&](size_t) {
    const bool in_worker = ThreadPool::InWorker();
    if (in_worker) {
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_claimed = true;
      }
      cv.notify_all();
    } else {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return worker_claimed; });
    }
    // The inner loop must complete even while every pool thread is
    // occupied by the outer loop.
    std::vector<size_t> inner_order;
    pool.ParallelFor(0, kInner, [&](size_t j) {
      if (in_worker) inner_order.push_back(j);
      total.fetch_add(1, std::memory_order_relaxed);
    });
    if (in_worker) {
      // Inline (serial) execution preserves index order.
      EXPECT_EQ(inner_order.size(), kInner);
      for (size_t j = 0; j < inner_order.size(); ++j) {
        EXPECT_EQ(inner_order[j], j);
      }
      nested_in_worker.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
  EXPECT_GT(nested_in_worker.load(), 0);
}

TEST(ThreadPoolTest, InWorkerTracksThread) {
  EXPECT_FALSE(ThreadPool::InWorker());
  ThreadPool pool(2);
  // The caller's task blocks until a worker has run one, guaranteeing
  // both sides of InWorker() are observed regardless of scheduling.
  std::mutex mu;
  std::condition_variable cv;
  bool worker_ran = false;
  pool.ParallelFor(0, 8, [&](size_t) {
    if (ThreadPool::InWorker()) {
      {
        std::lock_guard<std::mutex> lock(mu);
        worker_ran = true;
      }
      cv.notify_all();
    } else {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return worker_ran; });
    }
  });
  EXPECT_TRUE(worker_ran);
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](size_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                       }),
      std::runtime_error);

  // The pool must survive a throwing loop and run subsequent loops fully.
  std::atomic<size_t> count{0};
  pool.ParallelFor(0, 1000, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPoolTest, SerialPoolPropagatesExceptions) {
  ThreadPool pool(0);
  EXPECT_THROW(pool.ParallelFor(0, 4,
                                [&](size_t i) {
                                  if (i == 2) {
                                    throw std::runtime_error("serial boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(DeriveTaskSeedTest, DeterministicAcrossCalls) {
  for (uint64_t base : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    for (uint64_t idx = 0; idx < 64; ++idx) {
      EXPECT_EQ(DeriveTaskSeed(base, idx), DeriveTaskSeed(base, idx));
    }
  }
}

TEST(DeriveTaskSeedTest, DistinctAcrossTasksAndBases) {
  std::set<uint64_t> seen;
  for (uint64_t base : {7ull, 8ull, 1000000007ull}) {
    for (uint64_t idx = 0; idx < 1000; ++idx) {
      seen.insert(DeriveTaskSeed(base, idx));
    }
  }
  // 3 bases x 1000 tasks, no collisions expected from a 64-bit mixer.
  EXPECT_EQ(seen.size(), 3000u);
}

TEST(DeriveTaskSeedTest, DiffersFromBaseSeed) {
  // Task 0's stream must not alias the base stream some caller already
  // consumed (the bench harness seeds trial 0 with the base seed itself
  // only where backward compatibility demands it).
  for (uint64_t base : {0ull, 42ull, 0xFFFFFFFFFFFFFFFFull}) {
    EXPECT_NE(DeriveTaskSeed(base, 0), base);
  }
}

}  // namespace
}  // namespace ringdde
