#include "core/bivariate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/math_util.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

class BivariateTest : public ::testing::Test {
 protected:
  /// Loads n items with x ~ dist_x and y = Generate(x, rng).
  template <typename YGen>
  void Build(const Distribution& dist_x, YGen&& y_gen, size_t n = 50000) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(1024).ok());
    store_ = std::make_unique<BivariateStore>(ring_.get());
    Rng rng(3);
    std::vector<XY> items;
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      XY item;
      item.x = dist_x.Sample(rng);
      item.y = y_gen(item.x, rng);
      items.push_back(item);
    }
    ASSERT_TRUE(store_->BulkLoad(items).ok());
  }

  BivariateEstimate Estimate(size_t probes = 256) {
    BivariateOptions opts;
    opts.num_probes = probes;
    BivariateEstimator est(ring_.get(), store_.get(), opts);
    Rng rng(7);
    auto e = est.Estimate(*ring_->RandomAliveNode(rng));
    EXPECT_TRUE(e.ok());
    return std::move(*e);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  std::unique_ptr<BivariateStore> store_;
};

TEST_F(BivariateTest, StoreAssignsByXPlacement) {
  UniformDistribution ux;
  Build(ux, [](double, Rng& rng) { return rng.UniformDouble(); }, 5000);
  EXPECT_EQ(store_->total_items(), 5000u);
  EXPECT_EQ(ring_->TotalItems(), 5000u);
  // Every side-table item sits with the ring owner of its x.
  for (NodeAddr a : ring_->AliveAddrs()) {
    for (const XY& item : store_->ItemsAt(a)) {
      EXPECT_TRUE(ring_->GetNode(a)->Owns(RingId::FromUnit(item.x)));
    }
  }
}

TEST_F(BivariateTest, ExactRectangleCountScans) {
  UniformDistribution ux;
  Build(ux, [](double, Rng& rng) { return rng.UniformDouble(); }, 20000);
  const uint64_t all = store_->ExactRectangleCount(0, 1, 0, 1);
  EXPECT_EQ(all, 20000u);
  const uint64_t quadrant = store_->ExactRectangleCount(0, 0.5, 0, 0.5);
  EXPECT_NEAR(static_cast<double>(quadrant), 5000.0, 300.0);
}

TEST_F(BivariateTest, IndependentAttributesFactorize) {
  // x uniform, y ~ Normal(0.5, 0.1) independent of x: F(x,y) = x * G(y).
  UniformDistribution ux;
  TruncatedNormalDistribution ny(0.5, 0.1);
  Build(ux, [&ny](double, Rng& rng) { return ny.Sample(rng); });
  const BivariateEstimate e = Estimate();
  for (double x : {0.25, 0.5, 0.75}) {
    for (double y : {0.4, 0.5, 0.6}) {
      EXPECT_NEAR(e.JointCdf(x, y), x * ny.Cdf(y), 0.04)
          << "x=" << x << " y=" << y;
    }
  }
}

TEST_F(BivariateTest, CorrelatedAttributesAreCaptured) {
  // y tracks x: y = clamp(x + small noise). An independence-assuming
  // estimate (marginal product) is far off in the corners.
  UniformDistribution ux;
  Build(ux, [](double x, Rng& rng) {
    return Clamp(x + rng.Normal(0.0, 0.05), 0.0, 1.0);
  });
  const BivariateEstimate e = Estimate();
  const double n = static_cast<double>(store_->total_items());
  // Low-x & low-y rectangle: under correlation nearly all low-x items
  // qualify -> mass ~ 0.3; independence would say 0.3 * 0.3 ~ 0.09.
  const double est = e.RectangleMass(0.0, 0.3, 0.0, 0.35);
  const double exact =
      store_->ExactRectangleCount(0.0, 0.3, 0.0, 0.35) / n;
  EXPECT_NEAR(est, exact, 0.05);
  EXPECT_GT(est, 0.2);  // clearly not the independence answer
  // Anti-diagonal rectangle is nearly empty.
  const double off = e.RectangleMass(0.0, 0.3, 0.7, 1.0);
  EXPECT_LT(off, 0.03);
}

TEST_F(BivariateTest, RectangleMassMatchesExactScanBroadly) {
  ZipfDistribution zx(500, 0.8);
  Build(zx, [](double x, Rng& rng) {
    return Clamp(1.0 - x + rng.Normal(0.0, 0.1), 0.0, 1.0);
  });
  const BivariateEstimate e = Estimate(384);
  const double n = static_cast<double>(store_->total_items());
  Rng qrng(11);
  double worst = 0.0;
  for (int q = 0; q < 30; ++q) {
    const double x1 = qrng.UniformDouble(0.0, 0.8);
    const double x2 = x1 + qrng.UniformDouble(0.05, 0.2);
    const double y1 = qrng.UniformDouble(0.0, 0.8);
    const double y2 = y1 + qrng.UniformDouble(0.05, 0.2);
    const double est = e.RectangleMass(x1, x2, y1, y2);
    const double exact = store_->ExactRectangleCount(x1, x2, y1, y2) / n;
    worst = std::max(worst, std::fabs(est - exact));
  }
  EXPECT_LT(worst, 0.05);
}

TEST_F(BivariateTest, MarginalXMatchesUnivariateQuality) {
  TruncatedNormalDistribution nx(0.5, 0.15);
  Build(nx, [](double, Rng& rng) { return rng.UniformDouble(); });
  const BivariateEstimate e = Estimate();
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(e.x_cdf().Evaluate(x), nx.Cdf(x), 0.02);
  }
  EXPECT_NEAR(e.estimated_total(), 50000.0, 5000.0);
}

TEST_F(BivariateTest, JointCdfMonotoneInBothArguments) {
  UniformDistribution ux;
  Build(ux, [](double x, Rng& rng) {
    return Clamp(x * 0.5 + rng.UniformDouble() * 0.5, 0.0, 1.0);
  });
  const BivariateEstimate e = Estimate(128);
  double prev = -1.0;
  for (int i = 0; i <= 10; ++i) {
    const double v = e.JointCdf(i / 10.0, 0.7);
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
  prev = -1.0;
  for (int i = 0; i <= 10; ++i) {
    const double v = e.JointCdf(0.7, i / 10.0);
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

TEST_F(BivariateTest, DeadQuerierRejected) {
  UniformDistribution ux;
  Build(ux, [](double, Rng& rng) { return rng.UniformDouble(); }, 1000);
  const NodeAddr victim = ring_->AliveAddrs()[0];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  BivariateEstimator est(ring_.get(), store_.get());
  EXPECT_TRUE(est.Estimate(victim).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ringdde
