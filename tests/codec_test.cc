#include "common/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.h"

namespace ringdde {
namespace {

TEST(EncoderTest, FixedWidthLittleEndian) {
  Encoder enc;
  enc.PutFixed32(0x01020304);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc.buffer()[0], 0x04);
  EXPECT_EQ(enc.buffer()[3], 0x01);
  enc.Clear();
  enc.PutFixed64(0x0102030405060708ULL);
  ASSERT_EQ(enc.size(), 8u);
  EXPECT_EQ(enc.buffer()[0], 0x08);
  EXPECT_EQ(enc.buffer()[7], 0x01);
}

TEST(CodecTest, FixedRoundTrips) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutFixed32(0xDEADBEEF);
  enc.PutFixed64(0x123456789ABCDEF0ULL);
  Decoder dec(enc.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetFixed32(&u32).ok());
  ASSERT_TRUE(dec.GetFixed64(&u64).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x123456789ABCDEF0ULL);
  EXPECT_TRUE(dec.Done());
}

TEST(CodecTest, VarintRoundTripsEdgeValues) {
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128},
        uint64_t{16383}, uint64_t{16384}, uint64_t{1} << 32,
        std::numeric_limits<uint64_t>::max()}) {
    Encoder enc;
    enc.PutVarint64(v);
    EXPECT_EQ(enc.size(), VarintLength(v));
    Decoder dec(enc.buffer());
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint64(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.Done());
  }
}

TEST(CodecTest, VarintLengths) {
  EXPECT_EQ(VarintLength(0), 1u);
  EXPECT_EQ(VarintLength(127), 1u);
  EXPECT_EQ(VarintLength(128), 2u);
  EXPECT_EQ(VarintLength(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(CodecTest, DoubleRoundTripsSpecials) {
  for (double v : {0.0, -0.0, 1.5, -3.14159, 1e-300, 1e300,
                   std::numeric_limits<double>::infinity()}) {
    Encoder enc;
    enc.PutDouble(v);
    Decoder dec(enc.buffer());
    double out;
    ASSERT_TRUE(dec.GetDouble(&out).ok());
    EXPECT_EQ(out, v);
  }
  // NaN: compare bit patterns, not values.
  Encoder enc;
  enc.PutDouble(std::nan(""));
  Decoder dec(enc.buffer());
  double out;
  ASSERT_TRUE(dec.GetDouble(&out).ok());
  EXPECT_TRUE(std::isnan(out));
}

TEST(CodecTest, LengthPrefixedBytes) {
  const uint8_t payload[] = {1, 2, 3, 4, 5};
  Encoder enc;
  enc.PutLengthPrefixedBytes(payload, sizeof(payload));
  Decoder dec(enc.buffer());
  const uint8_t* data;
  size_t len;
  ASSERT_TRUE(dec.GetLengthPrefixedBytes(&data, &len).ok());
  ASSERT_EQ(len, 5u);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[4], 5);
  EXPECT_TRUE(dec.Done());
}

TEST(DecoderTest, TruncationIsOutOfRange) {
  Encoder enc;
  enc.PutFixed64(42);
  // Chop the last byte.
  Decoder dec(enc.buffer().data(), enc.size() - 1);
  uint64_t v;
  EXPECT_EQ(dec.GetFixed64(&v).code(), StatusCode::kOutOfRange);
}

TEST(DecoderTest, TruncatedVarintRejected) {
  Encoder enc;
  enc.PutVarint64(1u << 20);  // multi-byte
  Decoder dec(enc.buffer().data(), 1);
  uint64_t v;
  EXPECT_EQ(dec.GetVarint64(&v).code(), StatusCode::kOutOfRange);
}

TEST(DecoderTest, OverlongVarintRejected) {
  // 10 continuation bytes followed by a large final byte: > 64 bits.
  std::vector<uint8_t> bad(10, 0xFF);
  Decoder dec(bad.data(), bad.size());
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint64(&v).ok());
}

TEST(DecoderTest, ByteStringLengthBeyondPayloadRejected) {
  Encoder enc;
  enc.PutVarint64(1000);  // claims 1000 bytes, provides none
  Decoder dec(enc.buffer());
  const uint8_t* data;
  size_t len;
  EXPECT_EQ(dec.GetLengthPrefixedBytes(&data, &len).code(),
            StatusCode::kOutOfRange);
}

TEST(DecoderTest, EmptyBufferDoneAndFailsReads) {
  Decoder dec(nullptr, 0);
  EXPECT_TRUE(dec.Done());
  uint8_t v;
  EXPECT_FALSE(dec.GetU8(&v).ok());
}

TEST(CodecTest, RandomizedMixedRoundTrip) {
  Rng rng(71);
  for (int round = 0; round < 200; ++round) {
    Encoder enc;
    std::vector<uint64_t> ints;
    std::vector<double> doubles;
    const int n = 1 + static_cast<int>(rng.UniformU64(20));
    for (int i = 0; i < n; ++i) {
      const uint64_t v = rng.NextU64() >> rng.UniformU64(64);
      ints.push_back(v);
      enc.PutVarint64(v);
      const double d = rng.UniformDouble(-1e6, 1e6);
      doubles.push_back(d);
      enc.PutDouble(d);
    }
    Decoder dec(enc.buffer());
    for (int i = 0; i < n; ++i) {
      uint64_t v;
      double d;
      ASSERT_TRUE(dec.GetVarint64(&v).ok());
      ASSERT_TRUE(dec.GetDouble(&d).ok());
      EXPECT_EQ(v, ints[i]);
      EXPECT_EQ(d, doubles[i]);
    }
    EXPECT_TRUE(dec.Done());
  }
}

}  // namespace
}  // namespace ringdde
