#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/counters.h"
#include "sim/latency_model.h"

namespace ringdde {
namespace {

TEST(CountersTest, StartZeroAndAccumulate) {
  CostCounters c;
  EXPECT_EQ(c.messages, 0u);
  c += CostCounters{3, 2, 100, 0.5};
  c += CostCounters{1, 1, 50, 0.25};
  EXPECT_EQ(c.messages, 4u);
  EXPECT_EQ(c.hops, 3u);
  EXPECT_EQ(c.bytes, 150u);
  EXPECT_DOUBLE_EQ(c.latency_sum, 0.75);
}

TEST(CountersTest, SubtractionGivesDelta) {
  CostCounters a{10, 5, 1000, 2.0};
  CostCounters b{4, 2, 300, 0.5};
  CostCounters d = a - b;
  EXPECT_EQ(d.messages, 6u);
  EXPECT_EQ(d.bytes, 700u);
}

TEST(CostScopeTest, CapturesOnlyScopedCost) {
  Network net;
  net.Send(1, 2, 10);
  CostScope scope(net.counters());
  net.Send(1, 2, 10);
  net.Send(2, 1, 10);
  EXPECT_EQ(scope.Delta().messages, 2u);
}

TEST(NetworkTest, SendCountsMessageHopsBytes) {
  NetworkOptions opts;
  opts.latency = std::make_shared<ConstantLatency>(0.1);
  opts.header_bytes = 40;
  Network net(opts);
  const double lat = net.Send(1, 2, 60, 3);
  EXPECT_DOUBLE_EQ(lat, 0.1);
  EXPECT_EQ(net.counters().messages, 1u);
  EXPECT_EQ(net.counters().hops, 3u);
  EXPECT_EQ(net.counters().bytes, 100u);
  EXPECT_DOUBLE_EQ(net.counters().latency_sum, 0.1);
}

TEST(NetworkTest, ResetCountersClears) {
  // Lossy fabric, so the send also bumps the loss/timeout accounting that
  // ResetCounters must clear alongside the cost counters.
  NetworkOptions opts;
  opts.loss_probability = 0.9;
  opts.seed = 3;
  Network net(opts);
  for (int i = 0; i < 20; ++i) net.Send(1, 2, 5);
  ASSERT_GT(net.lost_messages(), 0u);
  net.ResetCounters();
  EXPECT_EQ(net.counters().messages, 0u);
  EXPECT_EQ(net.counters().bytes, 0u);
  EXPECT_EQ(net.lost_messages(), 0u);
}

TEST(NetworkTest, TrySendWithoutInjectorEqualsSend) {
  // Two identically seeded fabrics: Send on one, TrySend on the other.
  // The zero-cost-off contract: identical latencies drawn from the same
  // rng stream, identical counters, ok() everywhere.
  NetworkOptions opts;
  opts.loss_probability = 0.1;
  opts.seed = 17;
  Network a(opts);
  Network b(opts);
  for (int i = 0; i < 200; ++i) {
    const double sent = a.Send(1, 2, 64, 2);
    Result<double> tried = b.TrySend(1, 2, 64, 2);
    ASSERT_TRUE(tried.ok());
    EXPECT_EQ(sent, *tried);
  }
  EXPECT_EQ(a.counters().messages, b.counters().messages);
  EXPECT_EQ(a.counters().bytes, b.counters().bytes);
  EXPECT_EQ(a.counters().hops, b.counters().hops);
  EXPECT_EQ(a.counters().latency_sum, b.counters().latency_sum);
  EXPECT_EQ(a.lost_messages(), b.lost_messages());
  EXPECT_EQ(b.counters().timeouts, 0u);
}

TEST(NetworkTest, DefaultLatencyModelInstalled) {
  Network net;
  EXPECT_GT(net.latency_model().Mean(), 0.0);
}

TEST(LatencyModelTest, ConstantIsConstant) {
  ConstantLatency m(0.07);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.Sample(rng, 1, 2), 0.07);
  EXPECT_DOUBLE_EQ(m.Mean(), 0.07);
}

TEST(LatencyModelTest, UniformStaysInRange) {
  UniformLatency m(0.01, 0.05);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double l = m.Sample(rng, 1, 2);
    EXPECT_GE(l, 0.01);
    EXPECT_LT(l, 0.05);
  }
  EXPECT_DOUBLE_EQ(m.Mean(), 0.03);
}

TEST(LatencyModelTest, LogNormalMedianAndMean) {
  LogNormalLatency m(0.05, 0.5);
  Rng rng(3);
  int below = 0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double l = m.Sample(rng, 1, 2);
    EXPECT_GT(l, 0.0);
    if (l < 0.05) ++below;
    sum += l;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);  // median
  EXPECT_NEAR(sum / n, m.Mean(), 0.005);
}

TEST(NetworkTest, EventQueueSharedClock) {
  Network net;
  net.events().ScheduleAt(9.0, [] {});
  net.events().RunAll();
  EXPECT_DOUBLE_EQ(net.Now(), 9.0);
}

TEST(CountersTest, ToStringContainsFields) {
  CostCounters c{1, 2, 3, 0.5};
  const std::string s = c.ToString();
  EXPECT_NE(s.find("messages=1"), std::string::npos);
  EXPECT_NE(s.find("bytes=3"), std::string::npos);
}

}  // namespace
}  // namespace ringdde
