// Parameterized property sweeps: invariants that must hold across the whole
// (distribution x network size x probe budget) grid.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "core/density_estimator.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "stats/bounds.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

std::unique_ptr<Distribution> MakeDist(const std::string& kind) {
  if (kind == "uniform") return std::make_unique<UniformDistribution>();
  if (kind == "normal") {
    return std::make_unique<TruncatedNormalDistribution>(0.5, 0.15);
  }
  if (kind == "zipf") return std::make_unique<ZipfDistribution>(500, 0.9);
  if (kind == "exp") {
    return std::make_unique<TruncatedExponentialDistribution>(5.0);
  }
  return std::make_unique<UniformDistribution>();
}

// (distribution kind, network size, probe budget)
using EstimatorGridParam = std::tuple<std::string, size_t, size_t>;

class EstimatorGridTest
    : public ::testing::TestWithParam<EstimatorGridParam> {
 protected:
  void SetUp() override {
    const auto& [kind, n, m] = GetParam();
    dist_ = MakeDist(kind);
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(n * 31 + m);
    ring_->InsertDatasetBulk(GenerateDataset(*dist_, 50000, rng).keys);

    DdeOptions opts;
    opts.num_probes = m;
    opts.seed = m * 7 + n;
    DistributionFreeEstimator est(ring_.get(), opts);
    auto e = est.Estimate(ring_->AliveAddrs()[0]);
    ASSERT_TRUE(e.ok());
    estimate_ = std::move(*e);
  }

  std::unique_ptr<Distribution> dist_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  DensityEstimate estimate_;
};

TEST_P(EstimatorGridTest, CdfIsMonotoneAndNormalized) {
  EXPECT_TRUE(estimate_.cdf.IsNormalized());
  double prev = -1.0;
  for (int i = 0; i <= 500; ++i) {
    const double f = estimate_.cdf.Evaluate(i / 500.0);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, -1e-12);
    EXPECT_LE(f, 1.0 + 1e-12);
    prev = f;
  }
}

TEST_P(EstimatorGridTest, TotalEstimateWithinTwentyPercent) {
  EXPECT_NEAR(estimate_.estimated_total_items, 50000.0, 10000.0);
}

TEST_P(EstimatorGridTest, InversionRoundTripHolds) {
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = estimate_.Quantile(p);
    EXPECT_NEAR(estimate_.Cdf(x), p, 1e-6);
  }
}

TEST_P(EstimatorGridTest, AccuracyWithinEmpiricalEnvelope) {
  const auto& [kind, n, m] = GetParam();
  const double ks = CompareCdfToTruth(estimate_.cdf, *dist_).ks;
  // Loose envelope: within 6x the idealized DKW epsilon at delta=0.05,
  // which absorbs gap-interpolation error across this whole grid. The
  // tight per-configuration numbers live in EXPERIMENTS.md (E1).
  const double envelope = 6.0 * DkwEpsilon(m, 0.05);
  EXPECT_LT(ks, std::max(envelope, 0.25))
      << kind << " n=" << n << " m=" << m;
}

TEST_P(EstimatorGridTest, CoverageAndPeersBookkeeping) {
  const auto& [kind, n, m] = GetParam();
  EXPECT_GT(estimate_.peers_probed, 0u);
  EXPECT_LE(estimate_.peers_probed, std::min(n, m * 2));
  EXPECT_GT(estimate_.covered_fraction, 0.0);
  EXPECT_LE(estimate_.covered_fraction, 1.0 + 1e-9);
}

TEST_P(EstimatorGridTest, CostWithinTheoryFactor) {
  const auto& [kind, n, m] = GetParam();
  // Iterative routing with warm finger tables: messages per probe within
  // a small constant of 2*E[hops] + 2.
  const double expected = 2.0 * (0.5 * std::log2(double(n))) + 2.0;
  const double actual = static_cast<double>(estimate_.cost.messages) /
                        static_cast<double>(m);
  EXPECT_LT(actual, expected * 2.5) << "n=" << n << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EstimatorGridTest,
    ::testing::Combine(
        ::testing::Values(std::string("uniform"), std::string("normal"),
                          std::string("zipf"), std::string("exp")),
        ::testing::Values<size_t>(256, 1024),
        ::testing::Values<size_t>(64, 256)),
    [](const ::testing::TestParamInfo<EstimatorGridParam>& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_m" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Monotone-improvement property: averaged over seeds, accuracy improves
// as the probe budget grows, for every distribution.
// ---------------------------------------------------------------------------

class BudgetMonotonicityTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BudgetMonotonicityTest, ErrorShrinksWithBudget) {
  auto dist = MakeDist(GetParam());
  double err_small = 0.0, err_large = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Network net;
    ChordRing ring(&net);
    ASSERT_TRUE(ring.CreateNetwork(1024).ok());
    Rng rng(seed);
    ring.InsertDatasetBulk(GenerateDataset(*dist, 50000, rng).keys);
    for (size_t m : {32, 512}) {
      DdeOptions opts;
      opts.num_probes = m;
      opts.seed = seed * 1000 + m;
      DistributionFreeEstimator est(&ring, opts);
      auto e = est.Estimate(ring.AliveAddrs()[0]);
      ASSERT_TRUE(e.ok());
      const double ks = CompareCdfToTruth(e->cdf, *dist).ks;
      (m == 32 ? err_small : err_large) += ks;
    }
  }
  EXPECT_LT(err_large, err_small);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, BudgetMonotonicityTest,
                         ::testing::Values("uniform", "normal", "zipf",
                                           "exp"));

}  // namespace
}  // namespace ringdde
