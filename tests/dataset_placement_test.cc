#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/placement.h"

namespace ringdde {
namespace {

TEST(DatasetTest, GeneratesRequestedCount) {
  Rng rng(1);
  UniformDistribution d;
  const Dataset ds = GenerateDataset(d, 1000, rng);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.distribution_name, "Uniform");
}

TEST(DatasetTest, EmptyDataset) {
  Rng rng(2);
  UniformDistribution d;
  const Dataset ds = GenerateDataset(d, 0, rng);
  EXPECT_EQ(ds.size(), 0u);
  const DatasetSummary s = SummarizeDataset(ds);
  EXPECT_EQ(s.count, 0u);
}

TEST(DatasetTest, SummaryTracksMoments) {
  Rng rng(3);
  TruncatedNormalDistribution d(0.5, 0.1);
  const Dataset ds = GenerateDataset(d, 50000, rng);
  const DatasetSummary s = SummarizeDataset(ds);
  EXPECT_EQ(s.count, 50000u);
  EXPECT_NEAR(s.mean, 0.5, 0.01);
  EXPECT_NEAR(s.median, 0.5, 0.01);
  EXPECT_NEAR(s.stddev, 0.1, 0.01);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LE(s.max, 1.0);
}

TEST(DomainMapperTest, RoundTrip) {
  DomainMapper m(-100.0, 300.0);
  EXPECT_NEAR(m.ToUnit(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(m.ToUnit(100.0), 0.5, 1e-12);
  EXPECT_LT(m.ToUnit(300.0), 1.0);  // clamped below 1 for the open domain
  EXPECT_NEAR(m.ToDomain(0.5), 100.0, 1e-9);
  EXPECT_NEAR(m.ToDomain(m.ToUnit(42.0)), 42.0, 1e-9);
}

TEST(DomainMapperTest, ClampsOutOfDomain) {
  DomainMapper m(0.0, 10.0);
  EXPECT_DOUBLE_EQ(m.ToUnit(-5.0), 0.0);
  EXPECT_LT(m.ToUnit(50.0), 1.0);
}

TEST(DomainMapperTest, ToRingIsOrderPreserving) {
  DomainMapper m(0.0, 1000.0);
  RingId prev = m.ToRing(0.0);
  for (int v = 1; v <= 100; ++v) {
    const RingId cur = m.ToRing(v * 10.0);
    EXPECT_GT(cur.value, prev.value);
    prev = cur;
  }
}

TEST(PlacementTest, OrderPreservingKeepsOrder) {
  double prev_u = -1.0;
  uint64_t prev_ring = 0;
  for (int i = 0; i <= 1000; ++i) {
    const double u = i / 1000.0 * 0.999;
    const RingId r = OrderPreservingPlacement(u);
    if (prev_u >= 0.0) {
      EXPECT_GE(r.value, prev_ring);
    }
    prev_u = u;
    prev_ring = r.value;
  }
}

TEST(PlacementTest, HashedDestroysOrderButIsDeterministic) {
  EXPECT_EQ(HashedPlacement(0.5).value, HashedPlacement(0.5).value);
  // Neighboring keys land far apart.
  int order_preserved = 0;
  for (int i = 0; i < 100; ++i) {
    const bool kept = HashedPlacement(i / 100.0).value <
                      HashedPlacement((i + 1) / 100.0).value;
    if (kept) ++order_preserved;
  }
  EXPECT_GT(order_preserved, 20);
  EXPECT_LT(order_preserved, 80);  // ~random, not monotone
}

TEST(PlacementTest, HashedSpreadsUniformly) {
  // Bucket 1000 consecutive keys into 4 quadrants of the ring.
  int buckets[4] = {0, 0, 0, 0};
  for (int i = 0; i < 1000; ++i) {
    const double u = HashedPlacement(i * 1e-3).ToUnit();
    buckets[static_cast<int>(u * 4)]++;
  }
  for (int b : buckets) {
    EXPECT_GT(b, 180);
    EXPECT_LT(b, 320);
  }
}

}  // namespace
}  // namespace ringdde
