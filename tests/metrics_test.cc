#include "stats/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ringdde {
namespace {

TEST(SupDistanceTest, IdenticalFunctionsZero) {
  RealFn f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(SupDistance(f, f, 0.0, 1.0), 0.0);
}

TEST(SupDistanceTest, ConstantOffset) {
  RealFn f = [](double x) { return x; };
  RealFn g = [](double x) { return x + 0.3; };
  EXPECT_NEAR(SupDistance(f, g, 0.0, 1.0), 0.3, 1e-12);
}

TEST(SupDistanceTest, ExtraPointsCatchNarrowSpikes) {
  RealFn f = [](double) { return 0.0; };
  // A spike exactly between grid points of a coarse grid.
  RealFn g = [](double x) { return std::fabs(x - 0.500001) < 1e-7 ? 5.0 : 0.0; };
  EXPECT_LT(SupDistance(f, g, 0.0, 1.0, 10), 1.0);
  EXPECT_NEAR(SupDistance(f, g, 0.0, 1.0, 10, {0.500001}), 5.0, 1e-9);
}

TEST(L1DistanceTest, KnownIntegral) {
  RealFn f = [](double) { return 0.0; };
  RealFn g = [](double x) { return x; };
  EXPECT_NEAR(L1Distance(f, g, 0.0, 1.0), 0.5, 1e-6);
}

TEST(L2DistanceTest, KnownIntegral) {
  RealFn f = [](double) { return 0.0; };
  RealFn g = [](double) { return 2.0; };
  EXPECT_NEAR(L2Distance(f, g, 0.0, 1.0), 2.0, 1e-9);
  RealFn h = [](double x) { return x; };
  EXPECT_NEAR(L2Distance(f, h, 0.0, 1.0), std::sqrt(1.0 / 3.0), 1e-6);
}

TEST(KlDivergenceTest, IdenticalIsZero) {
  RealFn p = [](double) { return 1.0; };
  EXPECT_NEAR(KlDivergence(p, p, 0.0, 1.0), 0.0, 1e-9);
}

TEST(KlDivergenceTest, PositiveForDifferentDensities) {
  RealFn p = [](double) { return 1.0; };
  RealFn q = [](double x) { return x < 0.5 ? 1.5 : 0.5; };
  EXPECT_GT(KlDivergence(p, q, 0.0, 1.0), 0.01);
}

TEST(KlDivergenceTest, FloorPreventsInfinity) {
  RealFn p = [](double) { return 1.0; };
  RealFn q = [](double) { return 0.0; };  // zero-mass estimate
  const double kl = KlDivergence(p, q, 0.0, 1.0);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);
}

TEST(CompareCdfToTruthTest, PerfectEstimateScoresZero) {
  UniformDistribution truth;
  auto est = PiecewiseLinearCdf::FromKnots({{0.0, 0.0}, {1.0, 1.0}});
  ASSERT_TRUE(est.ok());
  const AccuracyReport r = CompareCdfToTruth(*est, truth);
  EXPECT_NEAR(r.ks, 0.0, 1e-9);
  EXPECT_NEAR(r.l1_cdf, 0.0, 1e-9);
  EXPECT_NEAR(r.l2_cdf, 0.0, 1e-9);
  EXPECT_NEAR(r.l1_pdf, 0.0, 1e-6);
}

TEST(CompareCdfToTruthTest, KnownErrorMagnitude) {
  UniformDistribution truth;
  // Estimate: all mass in [0, 0.5] -> F(x) = 2x there, 1 beyond.
  auto est = PiecewiseLinearCdf::FromKnots({{0.0, 0.0}, {0.5, 1.0}});
  ASSERT_TRUE(est.ok());
  const AccuracyReport r = CompareCdfToTruth(*est, truth);
  EXPECT_NEAR(r.ks, 0.5, 1e-6);  // at x = 0.5
  EXPECT_GT(r.l1_cdf, 0.1);
}

TEST(CompareCdfToTruthTest, KsUsesKnotRefinement) {
  UniformDistribution truth;
  // Narrow jump at 0.5 that a coarse grid would straddle.
  auto est = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.4999999, 0.5}, {0.5000001, 0.9}, {1.0, 1.0}});
  ASSERT_TRUE(est.ok());
  const AccuracyReport r = CompareCdfToTruth(*est, truth, /*grid=*/64);
  EXPECT_GT(r.ks, 0.35);
}

TEST(MeanReportTest, AveragesFieldwise) {
  AccuracyReport a{0.2, 0.1, 0.3, 0.4};
  AccuracyReport b{0.4, 0.3, 0.5, 0.6};
  const AccuracyReport m = MeanReport({a, b});
  EXPECT_DOUBLE_EQ(m.ks, 0.3);
  EXPECT_DOUBLE_EQ(m.l1_cdf, 0.2);
  EXPECT_DOUBLE_EQ(m.l2_cdf, 0.4);
  EXPECT_DOUBLE_EQ(m.l1_pdf, 0.5);
}

TEST(MeanReportTest, EmptyIsZero) {
  const AccuracyReport m = MeanReport({});
  EXPECT_DOUBLE_EQ(m.ks, 0.0);
}

TEST(AccuracyReportTest, ToStringContainsMetrics) {
  AccuracyReport r{0.1, 0.2, 0.3, 0.4};
  const std::string s = r.ToString();
  EXPECT_NE(s.find("ks=0.1"), std::string::npos);
  EXPECT_NE(s.find("l1_pdf=0.4"), std::string::npos);
}

}  // namespace
}  // namespace ringdde
