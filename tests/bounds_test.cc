#include "stats/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ringdde {
namespace {

TEST(DkwTest, KnownSampleSize) {
  // m = ln(2/0.05) / (2 * 0.05^2) = ln(40)/0.005 ~ 737.8 -> 738.
  EXPECT_EQ(DkwRequiredSamples(0.05, 0.05), 738u);
}

TEST(DkwTest, TighterEpsilonNeedsQuadraticallyMore) {
  const size_t m1 = DkwRequiredSamples(0.1, 0.05);
  const size_t m2 = DkwRequiredSamples(0.05, 0.05);
  const size_t m4 = DkwRequiredSamples(0.025, 0.05);
  EXPECT_NEAR(static_cast<double>(m2) / m1, 4.0, 0.1);
  EXPECT_NEAR(static_cast<double>(m4) / m2, 4.0, 0.1);
}

TEST(DkwTest, SmallerDeltaNeedsMore) {
  EXPECT_GT(DkwRequiredSamples(0.05, 0.001), DkwRequiredSamples(0.05, 0.1));
}

TEST(DkwTest, EpsilonInvertsRequiredSamples) {
  const double eps = 0.07;
  const double delta = 0.02;
  const size_t m = DkwRequiredSamples(eps, delta);
  // With m samples the guaranteed epsilon is at most eps (m was rounded
  // up), and with m-1 it would exceed it.
  EXPECT_LE(DkwEpsilon(m, delta), eps);
  EXPECT_GT(DkwEpsilon(m - 1, delta), eps * 0.99);
}

TEST(DkwTest, ConfidenceMatchesBound) {
  // 2 exp(-2 m eps^2) at m=1000, eps=0.05 -> 2 exp(-5) ~ 0.01348.
  EXPECT_NEAR(DkwConfidence(1000, 0.05), 1.0 - 2.0 * std::exp(-5.0), 1e-12);
}

TEST(DkwTest, ConfidenceClampedAtZero) {
  EXPECT_DOUBLE_EQ(DkwConfidence(1, 0.01), 0.0);
}

TEST(DkwTest, ConfidenceApproachesOne) {
  EXPECT_GT(DkwConfidence(100000, 0.05), 0.999);
}

TEST(HoeffdingTest, RangeScalesRequirement) {
  // Estimating to +-1 of a [0,10] quantity == +-0.1 of a [0,1] quantity.
  EXPECT_EQ(HoeffdingRequiredSamples(1.0, 0.05, 10.0),
            DkwRequiredSamples(0.1, 0.05));
}

}  // namespace
}  // namespace ringdde
