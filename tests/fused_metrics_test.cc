// Golden-equivalence and property tests for the fused accuracy-metric
// kernels (stats/metrics.cc) and the sorted-batch cursor primitives of
// PiecewiseLinearCdf.
//
// The fused CompareCdfToTruth sweep replaced five independent passes; these
// tests pin it against a deliberately naive per-metric reference
// implementation, and pin EvaluateSorted/DensityAtSorted against the scalar
// Evaluate/DensityAt — the latter bit-exactly, on adversarial query sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "data/distribution.h"
#include "stats/metrics.h"
#include "stats/piecewise_cdf.h"

namespace ringdde {
namespace {

// A straightforward, unfused AccuracyReport: one loop per metric, scalar
// Evaluate/DensityAt per point, plain double accumulation. Deliberately
// written with none of the production kernel's structure so a shared bug is
// implausible.
AccuracyReport ReferenceReport(const PiecewiseLinearCdf& estimate,
                               const Distribution& truth, int grid) {
  AccuracyReport r;
  auto grid_x = [&](int i) {
    return Lerp(0.0, 1.0, static_cast<double>(i) / grid);
  };

  for (int i = 0; i <= grid; ++i) {
    const double x = grid_x(i);
    r.ks = std::max(r.ks, std::fabs(estimate.Evaluate(x) - truth.Cdf(x)));
  }
  for (const auto& k : estimate.knots()) {
    if (k.x < 0.0 || k.x > 1.0) continue;
    r.ks = std::max(r.ks, std::fabs(estimate.Evaluate(k.x) - truth.Cdf(k.x)));
  }

  const double h = 1.0 / grid;
  double l1 = 0.0, l2 = 0.0, l1p = 0.0;
  for (int i = 0; i < grid; ++i) {
    const double a = grid_x(i);
    const double b = grid_x(i + 1);
    const double da = estimate.Evaluate(a) - truth.Cdf(a);
    const double db = estimate.Evaluate(b) - truth.Cdf(b);
    l1 += 0.5 * (std::fabs(da) + std::fabs(db)) * h;
    l2 += 0.5 * (da * da + db * db) * h;
    l1p += 0.5 *
           (std::fabs(estimate.DensityAt(a) - truth.Pdf(a)) +
            std::fabs(estimate.DensityAt(b) - truth.Pdf(b))) *
           h;
  }
  r.l1_cdf = l1;
  r.l2_cdf = std::sqrt(l2);
  r.l1_pdf = l1p;
  return r;
}

PiecewiseLinearCdf EstimateOf(const Distribution& dist, size_t samples,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(samples);
  for (size_t i = 0; i < samples; ++i) xs.push_back(dist.Sample(rng));
  auto cdf = PiecewiseLinearCdf::FromSamples(std::move(xs));
  EXPECT_TRUE(cdf.ok());
  return cdf.value();
}

void ExpectReportsNear(const AccuracyReport& got, const AccuracyReport& want) {
  EXPECT_NEAR(got.ks, want.ks, 1e-9);
  EXPECT_NEAR(got.l1_cdf, want.l1_cdf, 1e-9);
  EXPECT_NEAR(got.l2_cdf, want.l2_cdf, 1e-9);
  EXPECT_NEAR(got.l1_pdf, want.l1_pdf, 1e-9);
}

TEST(FusedMetricsTest, MatchesReferenceOnUniform) {
  const UniformDistribution truth;
  const PiecewiseLinearCdf est = EstimateOf(truth, 300, 1);
  for (int grid : {64, 257, 2048}) {
    ExpectReportsNear(CompareCdfToTruth(est, truth, grid),
                      ReferenceReport(est, truth, grid));
  }
}

TEST(FusedMetricsTest, MatchesReferenceOnNormal) {
  const TruncatedNormalDistribution truth(0.4, 0.12);
  const PiecewiseLinearCdf est =
      EstimateOf(truth, 1024, 2).Resampled(256);
  for (int grid : {64, 257, 2048}) {
    ExpectReportsNear(CompareCdfToTruth(est, truth, grid),
                      ReferenceReport(est, truth, grid));
  }
}

TEST(FusedMetricsTest, MatchesReferenceOnZipf) {
  const ZipfDistribution truth(1000, 0.9);
  const PiecewiseLinearCdf est = EstimateOf(truth, 2048, 3).Resampled(300);
  for (int grid : {64, 257, 2048}) {
    ExpectReportsNear(CompareCdfToTruth(est, truth, grid),
                      ReferenceReport(est, truth, grid));
  }
}

TEST(FusedMetricsTest, BitIdenticalToLegacyShapedPasses) {
  // Stronger than 1e-9: against the exact legacy pass shapes (SupDistance
  // with knot refinement, Kahan-summed L1/L2 trapezoids) the fused report
  // must be bit-identical — the experiments' stdout depends on it.
  const TruncatedNormalDistribution truth(0.5, 0.15);
  const PiecewiseLinearCdf est = EstimateOf(truth, 1024, 4).Resampled(256);
  const int grid = 2048;
  const RealFn est_cdf = [&](double x) { return est.Evaluate(x); };
  const RealFn est_pdf = [&](double x) { return est.DensityAt(x); };
  const RealFn true_cdf = [&](double x) { return truth.Cdf(x); };
  const RealFn true_pdf = [&](double x) { return truth.Pdf(x); };
  std::vector<double> knot_xs;
  for (const auto& k : est.knots()) knot_xs.push_back(k.x);

  const AccuracyReport fused = CompareCdfToTruth(est, truth, grid);
  EXPECT_EQ(fused.ks, SupDistance(est_cdf, true_cdf, 0.0, 1.0, grid, knot_xs));
  EXPECT_EQ(fused.l1_cdf, L1Distance(est_cdf, true_cdf, 0.0, 1.0, grid));
  EXPECT_EQ(fused.l2_cdf, L2Distance(est_cdf, true_cdf, 0.0, 1.0, grid));
  EXPECT_EQ(fused.l1_pdf, L1Distance(est_pdf, true_pdf, 0.0, 1.0, grid));
}

TEST(FusedMetricsTest, SupDistanceCdfMatchesLambdaSupDistance) {
  const PiecewiseLinearCdf a = EstimateOf(UniformDistribution(), 200, 5);
  const PiecewiseLinearCdf b =
      EstimateOf(TruncatedNormalDistribution(0.5, 0.2), 200, 6);
  const RealFn fa = [&](double x) { return a.Evaluate(x); };
  const RealFn fb = [&](double x) { return b.Evaluate(x); };
  for (int grid : {16, 512, 2048}) {
    EXPECT_EQ(SupDistanceCdf(a, b, 0.0, 1.0, grid),
              SupDistance(fa, fb, 0.0, 1.0, grid));
  }
}

// ---------------------------------------------------------------------------
// Randomized property: the sorted-batch cursor primitives agree bit-exactly
// with the scalar binary-search path on any nondecreasing query vector.
// ---------------------------------------------------------------------------

PiecewiseLinearCdf RandomCdf(Rng& rng) {
  const size_t n = 2 + rng.UniformU64(40);
  std::vector<PiecewiseLinearCdf::Knot> knots;
  knots.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Positions intentionally include values outside [0, 1].
    knots.push_back({rng.UniformDouble() * 1.6 - 0.3, rng.UniformDouble()});
  }
  PiecewiseLinearCdf::MakeMonotone(knots);
  if (knots.size() < 2) knots.push_back({knots.back().x + 0.5, 1.0});
  auto cdf = PiecewiseLinearCdf::FromKnots(std::move(knots));
  EXPECT_TRUE(cdf.ok());
  return cdf.value();
}

std::vector<double> RandomSortedQueries(const PiecewiseLinearCdf& cdf,
                                        Rng& rng) {
  std::vector<double> xs;
  const size_t m = rng.UniformU64(200);
  xs.reserve(m + cdf.knots().size() + 8);
  for (size_t i = 0; i < m; ++i) {
    xs.push_back(rng.UniformDouble() * 2.0 - 0.5);  // spills out of range
  }
  // Adversarial abscissae: exact knot positions (segment-boundary ties),
  // duplicates, and the extreme clamp points.
  for (const auto& k : cdf.knots()) {
    if (rng.UniformDouble() < 0.5) xs.push_back(k.x);
    if (rng.UniformDouble() < 0.25) xs.push_back(k.x);
  }
  xs.push_back(cdf.knots().front().x);
  xs.push_back(cdf.knots().back().x);
  std::sort(xs.begin(), xs.end());
  return xs;
}

TEST(SortedBatchTest, EvaluateSortedMatchesScalarExactly) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const PiecewiseLinearCdf cdf = RandomCdf(rng);
    const std::vector<double> xs = RandomSortedQueries(cdf, rng);
    const std::vector<double> batch = cdf.EvaluateSorted(xs);
    ASSERT_EQ(batch.size(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batch[i], cdf.Evaluate(xs[i]))
          << "trial " << trial << " x=" << xs[i];
    }
  }
}

TEST(SortedBatchTest, DensityAtSortedMatchesScalarExactly) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const PiecewiseLinearCdf cdf = RandomCdf(rng);
    const std::vector<double> xs = RandomSortedQueries(cdf, rng);
    const std::vector<double> batch = cdf.DensityAtSorted(xs);
    ASSERT_EQ(batch.size(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batch[i], cdf.DensityAt(xs[i]))
          << "trial " << trial << " x=" << xs[i];
    }
  }
}

TEST(SortedBatchTest, InterleavedCursorMatchesScalars) {
  // The fused report walks one cursor with alternating Evaluate/DensityAt
  // calls at nondecreasing x; both must stay exact under interleaving.
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const PiecewiseLinearCdf cdf = RandomCdf(rng);
    const std::vector<double> xs = RandomSortedQueries(cdf, rng);
    PiecewiseLinearCdf::Cursor cursor(cdf);
    for (double x : xs) {
      EXPECT_EQ(cursor.Evaluate(x), cdf.Evaluate(x));
      EXPECT_EQ(cursor.DensityAt(x), cdf.DensityAt(x));
    }
  }
}

TEST(SortedBatchTest, EmptyQueryVector) {
  const PiecewiseLinearCdf cdf;
  EXPECT_TRUE(cdf.EvaluateSorted({}).empty());
  EXPECT_TRUE(cdf.DensityAtSorted({}).empty());
}

}  // namespace
}  // namespace ringdde
