// Fault-semantics parity: the same seeded FaultPlan produces the same
// degradation through the socket backend as through the raw sim —
// probes_failed, retries, timeouts, and the widened DKW bound
// (ConfidenceEpsilon) all identical — and wire-level faults (server-side
// connection drops + real delays) do not change RESULTS at all, only
// client-observed reconnects/latency, because the server severs faulted
// RPCs before dispatching them.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/ring_service.h"
#include "data/dataset.h"
#include "sim/rpc_server.h"
#include "sim/socket_transport.h"

namespace ringdde {
namespace {

constexpr uint64_t kFaultSeed = 0xFA17'7357;
constexpr int kQueriers = 6;

DeploymentSpec FaultySpec(uint64_t case_seed) {
  DeploymentSpec spec;
  spec.peers = 24;
  spec.ring_seed = DeriveTaskSeed(case_seed, 1);
  spec.net_seed = DeriveTaskSeed(case_seed, 2);
  spec.num_probes = 48;
  spec.refinement_rounds = 2;
  spec.local_quantiles = 8;
  spec.retry_max_attempts = 3;
  spec.faults_enabled = true;
  spec.faults.drop_probability = 0.08;
  spec.faults.crash_probability = 0.10;
  spec.faults.seed = DeriveTaskSeed(case_seed, 3);
  return spec;
}

struct DegradationTallies {
  uint64_t failed_probes = 0;
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  std::vector<double> epsilons;
  std::vector<double> totals;
};

/// Runs setup + kQueriers estimates through one service (already Init'd)
/// via `client` and tallies the degradation counters.
DegradationTallies DriveFaultyCorpus(RingClient* client, uint64_t case_seed) {
  DegradationTallies tallies;
  EXPECT_TRUE(client->Stabilize().ok());
  InsertSpec ins;
  ins.dist_kind = 1;  // normal(mean, stddev)
  ins.param_a = 0.5;
  ins.param_b = 0.15;
  ins.count = 3000;
  ins.data_seed = DeriveTaskSeed(case_seed, 4);
  EXPECT_TRUE(client->Insert(ins).ok());
  for (int q = 0; q < kQueriers; ++q) {
    const NodeAddr querier = static_cast<NodeAddr>(q + 1);
    const uint64_t query_seed = DeriveTaskSeed(case_seed, 300 + q);
    Result<DensityEstimate> estimate = client->Estimate(querier, query_seed);
    // Under a crashing plan a querier itself may be crashed from t=0 — the
    // estimate then fails outright; skip it in ALL runs identically (the
    // verdict is a pure function of the shared plan, so every backend
    // skips the same queriers).
    if (!estimate.ok()) {
      tallies.epsilons.push_back(-1.0);
      tallies.totals.push_back(-1.0);
      continue;
    }
    tallies.failed_probes += estimate->failed_probes;
    tallies.retries += estimate->retries;
    tallies.timeouts += estimate->timeouts;
    tallies.epsilons.push_back(estimate->ConfidenceEpsilon());
    tallies.totals.push_back(estimate->estimated_total_items);
  }
  return tallies;
}

void ExpectTalliesMatch(const DegradationTallies& got,
                        const DegradationTallies& want, const char* what) {
  EXPECT_EQ(got.failed_probes, want.failed_probes) << what;
  EXPECT_EQ(got.retries, want.retries) << what;
  EXPECT_EQ(got.timeouts, want.timeouts) << what;
  ASSERT_EQ(got.epsilons.size(), want.epsilons.size()) << what;
  for (size_t i = 0; i < want.epsilons.size(); ++i) {
    EXPECT_NEAR(got.epsilons[i], want.epsilons[i], 1e-12) << what << " q" << i;
    EXPECT_NEAR(got.totals[i], want.totals[i], 1e-9) << what << " q" << i;
  }
}

class TransportFaultParityTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportFaultParityTest, SocketBackendMatchesSimUnderFaultPlan) {
  const uint64_t case_seed = DeriveTaskSeed(kFaultSeed, GetParam());
  const DeploymentSpec spec = FaultySpec(case_seed);

  // Sim rung: the service called directly, no framing at all.
  RingRpcService sim_service(spec);
  ASSERT_TRUE(sim_service.Init().ok());
  LoopbackChannel direct(
      [&sim_service](const Frame& f) { return sim_service.Handle(f); });
  RingClient sim_client(&direct);
  DegradationTallies sim = DriveFaultyCorpus(&sim_client, case_seed);

  // At least one fault must actually have fired, or this test proves
  // nothing about parity under degradation.
  EXPECT_GT(sim.timeouts + sim.failed_probes + sim.retries, 0u);

  // Socket rung: an identical service behind a real TCP server.
  RingRpcService wire_service(spec);
  ASSERT_TRUE(wire_service.Init().ok());
  RpcServer server([&wire_service](const Frame& f, Frame* reply) {
    return wire_service.Handle(f, reply);
  });
  ASSERT_TRUE(server.Start().ok());
  {
    SocketRpcChannel channel(server.port());
    RingClient wire_client(&channel);
    DegradationTallies wire = DriveFaultyCorpus(&wire_client, case_seed);
    ExpectTalliesMatch(wire, sim, "socket-vs-sim");
  }
  server.Stop();
}

TEST_P(TransportFaultParityTest, WireFaultsChangeTransportNotResults) {
  const uint64_t case_seed = DeriveTaskSeed(kFaultSeed, 100 + GetParam());
  const DeploymentSpec spec = FaultySpec(case_seed);

  RingRpcService sim_service(spec);
  ASSERT_TRUE(sim_service.Init().ok());
  LoopbackChannel direct(
      [&sim_service](const Frame& f) { return sim_service.Handle(f); });
  RingClient sim_client(&direct);
  DegradationTallies sim = DriveFaultyCorpus(&sim_client, case_seed);

  // Same deployment behind a server that REALLY drops connections for a
  // deterministic fraction of RPCs (close before dispatch) and delays
  // others (a real sleep). The client's reconnect-retry loop must recover
  // every dropped call, leaving the protocol results bit-identical.
  RingRpcService wire_service(spec);
  ASSERT_TRUE(wire_service.Init().ok());
  RpcServer server([&wire_service](const Frame& f, Frame* reply) {
    return wire_service.Handle(f, reply);
  });
  FaultOptions wire_faults;
  wire_faults.drop_probability = 0.15;
  wire_faults.delay_probability = 0.10;
  wire_faults.delay_mean_seconds = 0.002;
  wire_faults.seed = DeriveTaskSeed(case_seed, 9);
  auto injector = std::make_shared<FaultInjector>(wire_faults);
  server.set_wire_fault_hook([injector](uint64_t rpc_seq) {
    MessageFault fault = injector->DecideMessage(rpc_seq);
    WireFault wire;
    wire.drop = fault.drop;
    wire.extra_delay_seconds = fault.extra_delay_seconds;
    return wire;
  });
  ASSERT_TRUE(server.Start().ok());
  {
    SocketRpcChannel channel(server.port());
    RingClient wire_client(&channel);
    DegradationTallies wire = DriveFaultyCorpus(&wire_client, case_seed);
    ExpectTalliesMatch(wire, sim, "wire-faults-vs-sim");
    // The transport DID take damage: beyond the initial connect, at least
    // one reconnect recovered a server-side drop.
    EXPECT_GT(channel.stats().reconnects, 1u);
    EXPECT_GT(server.frames_dropped(), 0u);
  }
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(Plans, TransportFaultParityTest,
                         ::testing::Range(0, 2));

}  // namespace
}  // namespace ringdde
