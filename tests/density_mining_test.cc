#include "apps/density_mining.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "data/dataset.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

class DensityMiningTest : public ::testing::Test {
 protected:
  DensityEstimate EstimateFor(const Distribution& dist, size_t probes = 384) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    EXPECT_TRUE(ring_->CreateNetwork(1024).ok());
    Rng rng(5);
    ring_->InsertDatasetBulk(GenerateDataset(dist, 100000, rng).keys);
    DdeOptions opts;
    opts.num_probes = probes;
    DistributionFreeEstimator est(ring_.get(), opts);
    auto e = est.Estimate(ring_->AliveAddrs()[0]);
    EXPECT_TRUE(e.ok());
    return std::move(*e);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(DensityMiningTest, FindsTrimodalClusters) {
  GaussianMixtureDistribution dist(
      {{0.4, 0.2, 0.03}, {0.35, 0.55, 0.04}, {0.25, 0.85, 0.03}});
  const DensityEstimate e = EstimateFor(dist);
  auto modes = DetectModes(e);
  ASSERT_TRUE(modes.ok());
  ASSERT_EQ(modes->size(), 3u);
  // Heaviest first; centers near the true component means.
  EXPECT_NEAR((*modes)[0].center, 0.2, 0.05);
  EXPECT_NEAR((*modes)[0].mass, 0.4, 0.07);
  std::vector<double> centers;
  for (const auto& m : *modes) centers.push_back(m.center);
  std::sort(centers.begin(), centers.end());
  EXPECT_NEAR(centers[0], 0.2, 0.05);
  EXPECT_NEAR(centers[1], 0.55, 0.05);
  EXPECT_NEAR(centers[2], 0.85, 0.05);
}

TEST_F(DensityMiningTest, ModeMassesSumToOne) {
  GaussianMixtureDistribution dist({{0.5, 0.3, 0.05}, {0.5, 0.7, 0.05}});
  const DensityEstimate e = EstimateFor(dist);
  auto modes = DetectModes(e);
  ASSERT_TRUE(modes.ok());
  double total = 0.0;
  for (const auto& m : *modes) {
    total += m.mass;
    EXPECT_LE(m.lo, m.center);
    EXPECT_GE(m.hi, m.center);
    EXPECT_GE(m.mass, 0.0);
  }
  EXPECT_NEAR(total, 1.0, 0.02);
}

TEST_F(DensityMiningTest, UnimodalDataYieldsOneDominantMode) {
  TruncatedNormalDistribution dist(0.5, 0.1);
  const DensityEstimate e = EstimateFor(dist);
  ModeDetectionOptions opts;
  opts.min_mass = 0.05;
  auto modes = DetectModes(e, opts);
  ASSERT_TRUE(modes.ok());
  ASSERT_GE(modes->size(), 1u);
  EXPECT_NEAR((*modes)[0].center, 0.5, 0.05);
  EXPECT_GT((*modes)[0].mass, 0.8);
}

TEST_F(DensityMiningTest, MinMassMergesNoiseBumps) {
  GaussianMixtureDistribution dist({{0.5, 0.3, 0.05}, {0.5, 0.7, 0.05}});
  const DensityEstimate e = EstimateFor(dist);
  ModeDetectionOptions strict;
  strict.min_mass = 0.25;
  auto modes = DetectModes(e, strict);
  ASSERT_TRUE(modes.ok());
  EXPECT_EQ(modes->size(), 2u);
  ModeDetectionOptions absurd;
  absurd.min_mass = 0.9;  // nothing survives alone: all merges into one
  auto merged = DetectModes(e, absurd);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 1u);
  EXPECT_NEAR((*merged)[0].mass, 1.0, 0.02);
}

TEST_F(DensityMiningTest, RejectsTooCoarseGrid) {
  TruncatedNormalDistribution dist(0.5, 0.1);
  const DensityEstimate e = EstimateFor(dist, 64);
  ModeDetectionOptions opts;
  opts.grid = 4;
  EXPECT_TRUE(DetectModes(e, opts).status().IsInvalidArgument());
}

TEST(HeaviestRangesTest, FindsTheHotWindow) {
  // 80% of mass in [0.4, 0.5].
  auto cdf = PiecewiseLinearCdf::FromKnots(
      {{0.0, 0.0}, {0.4, 0.1}, {0.5, 0.9}, {1.0, 1.0}});
  ASSERT_TRUE(cdf.ok());
  const auto top = HeaviestRanges(*cdf, 0.1, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_NEAR(top[0].lo, 0.4, 0.01);
  EXPECT_NEAR(top[0].mass, 0.8, 0.02);
  EXPECT_GT(top[0].mass, top[1].mass);
}

TEST(HeaviestRangesTest, RangesAreDisjointAndSortedByMass) {
  PiecewiseLinearCdf cdf;  // uniform
  const auto top = HeaviestRanges(cdf, 0.2, 4);
  ASSERT_EQ(top.size(), 4u);
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_NEAR(top[i].hi - top[i].lo, 0.2, 1e-9);
    for (size_t j = i + 1; j < top.size(); ++j) {
      EXPECT_TRUE(top[i].hi <= top[j].lo + 1e-12 ||
                  top[j].hi <= top[i].lo + 1e-12);
    }
    if (i > 0) {
      EXPECT_LE(top[i].mass, top[i - 1].mass + 1e-12);
    }
  }
}

TEST(HeaviestRangesTest, FewerWindowsThanRequestedWhenNoRoom) {
  PiecewiseLinearCdf cdf;
  // Width 0.5: at most 2 disjoint windows fit.
  const auto top = HeaviestRanges(cdf, 0.5, 5);
  EXPECT_LE(top.size(), 2u);
}

}  // namespace
}  // namespace ringdde
