// Regression tests for the parallel benchmark harness: the bulk-placement
// fast path, Env replication, and the parallel-equals-serial contract of
// RepeatDde / ParallelRows.
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "gtest/gtest.h"

namespace ringdde::bench {
namespace {

TEST(BulkPlacementTest, SweepMatchesPerKeyInsertion) {
  Network net1, net2;
  RingOptions ropts;
  ropts.seed = 99;
  ChordRing ring1(&net1, ropts);
  ChordRing ring2(&net2, ropts);
  ASSERT_TRUE(ring1.CreateNetwork(64).ok());
  ASSERT_TRUE(ring2.CreateNetwork(64).ok());

  ZipfDistribution dist(1000, 0.9);
  Rng rng(123);
  std::vector<double> keys = GenerateDataset(dist, 20000, rng).keys;
  // Edge positions and duplicates must land identically too.
  keys.push_back(0.0);
  keys.push_back(keys[0]);
  keys.push_back(0.9999999);

  ring1.InsertDatasetBulk(keys);
  for (double k : keys) ASSERT_TRUE(ring2.InsertKeyBulk(k).ok());

  ASSERT_EQ(ring1.TotalItems(), ring2.TotalItems());
  const std::vector<NodeAddr> addrs = ring1.AliveAddrs();
  ASSERT_EQ(addrs, ring2.AliveAddrs());
  for (NodeAddr a : addrs) {
    const Node* n1 = ring1.GetNode(a);
    const Node* n2 = ring2.GetNode(a);
    ASSERT_NE(n1, nullptr);
    ASSERT_NE(n2, nullptr);
    EXPECT_EQ(n1->keys(), n2->keys()) << "node " << a;
  }
}

TEST(BulkPlacementTest, EmptyDatasetIsANoOp) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(8).ok());
  ring.InsertDatasetBulk({});
  EXPECT_EQ(ring.TotalItems(), 0u);
}

TEST(EnvReplicateTest, ReplicaIsBitIdentical) {
  auto env = BuildEnv(128, std::make_unique<ZipfDistribution>(1000, 0.9),
                      5000, /*seed=*/7);
  auto replica = env->Replicate();

  EXPECT_EQ(env->ring->TotalItems(), replica->ring->TotalItems());
  const std::vector<NodeAddr> addrs = env->ring->AliveAddrs();
  ASSERT_EQ(addrs, replica->ring->AliveAddrs());
  for (NodeAddr a : addrs) {
    const Node* n1 = env->ring->GetNode(a);
    const Node* n2 = replica->ring->GetNode(a);
    ASSERT_NE(n1, nullptr);
    ASSERT_NE(n2, nullptr);
    EXPECT_EQ(n1->keys(), n2->keys()) << "node " << a;
  }
  EXPECT_EQ(env->dist->Name(), replica->dist->Name());
}

TEST(RepeatDdeTest, ParallelEqualsSerialBitForBit) {
  DdeOptions opts;
  opts.num_probes = 64;
  constexpr int kReps = 4;
  constexpr uint64_t kSeedBase = 1000;

  auto env_serial =
      BuildEnv(128, std::make_unique<ZipfDistribution>(1000, 0.9), 5000,
               /*seed=*/17);
  auto env_parallel = env_serial->Replicate();

  ThreadPool serial(0);
  ThreadPool parallel(3);
  const RepeatedResult s =
      RepeatDde(*env_serial, opts, kReps, kSeedBase, &serial);
  const RepeatedResult p =
      RepeatDde(*env_parallel, opts, kReps, kSeedBase, &parallel);

  // Exact equality, not near-equality: the parallel engine must reproduce
  // the serial tables bit for bit.
  EXPECT_EQ(s.accuracy.ks, p.accuracy.ks);
  EXPECT_EQ(s.accuracy.l1_cdf, p.accuracy.l1_cdf);
  EXPECT_EQ(s.accuracy.l2_cdf, p.accuracy.l2_cdf);
  EXPECT_EQ(s.accuracy.l1_pdf, p.accuracy.l1_pdf);
  EXPECT_EQ(s.mean_messages, p.mean_messages);
  EXPECT_EQ(s.mean_hops, p.mean_hops);
  EXPECT_EQ(s.mean_bytes, p.mean_bytes);
  EXPECT_EQ(s.mean_total_error, p.mean_total_error);
  EXPECT_EQ(s.mean_peers, p.mean_peers);
}

TEST(ParallelRowsTest, ResultsArriveInRowOrder) {
  ThreadPool pool(3);
  const std::vector<std::string> rows = ParallelRows<std::string>(
      64, [](size_t i) { return "row-" + std::to_string(i); }, &pool);
  ASSERT_EQ(rows.size(), 64u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], "row-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace ringdde::bench
