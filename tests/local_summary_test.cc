#include "core/local_summary.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ringdde {
namespace {

Node MakeNode(double arc_lo, double arc_hi, const std::vector<double>& keys) {
  Node node(1, RingId::FromUnit(arc_hi));
  node.set_predecessor(NodeEntry{2, RingId::FromUnit(arc_lo)});
  node.InsertKeys(keys);
  return node;
}

TEST(LocalSummaryTest, ComputeCapturesArcAndCount) {
  Node node = MakeNode(0.2, 0.4, {0.25, 0.3, 0.35});
  const LocalSummary s = ComputeLocalSummary(node, 4);
  EXPECT_EQ(s.addr, 1u);
  EXPECT_EQ(s.item_count, 3u);
  EXPECT_NEAR(s.ArcWidth(), 0.2, 1e-9);
  ASSERT_EQ(s.quantiles.size(), 4u);
  EXPECT_DOUBLE_EQ(s.quantiles.front(), 0.25);  // local min
  EXPECT_DOUBLE_EQ(s.quantiles.back(), 0.35);   // local max
}

TEST(LocalSummaryTest, EmptyNodeHasNoQuantiles) {
  Node node = MakeNode(0.2, 0.4, {});
  const LocalSummary s = ComputeLocalSummary(node, 8);
  EXPECT_EQ(s.item_count, 0u);
  EXPECT_TRUE(s.quantiles.empty());
  EXPECT_DOUBLE_EQ(s.Density(), 0.0);
}

TEST(LocalSummaryTest, DensityIsCountOverWidth) {
  Node node = MakeNode(0.0, 0.5, {0.1, 0.2, 0.3, 0.4});
  const LocalSummary s = ComputeLocalSummary(node, 2);
  EXPECT_NEAR(s.Density(), 8.0, 1e-6);  // 4 items / 0.5 width
}

TEST(LocalSummaryTest, QuantilesAscending) {
  Rng rng(1);
  std::vector<double> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(0.2 + 0.2 * rng.UniformDouble());
  Node node = MakeNode(0.2, 0.4, keys);
  const LocalSummary s = ComputeLocalSummary(node, 16);
  for (size_t i = 1; i < s.quantiles.size(); ++i) {
    EXPECT_LE(s.quantiles[i - 1], s.quantiles[i]);
  }
}

TEST(LocalSummaryTest, InterpolatedRankEndpoints) {
  Node node = MakeNode(0.0, 1.0, {0.1, 0.2, 0.3, 0.4, 0.5});
  const LocalSummary s = ComputeLocalSummary(node, 5);
  EXPECT_DOUBLE_EQ(s.InterpolatedRank(0.05), 0.0);
  EXPECT_DOUBLE_EQ(s.InterpolatedRank(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.InterpolatedRank(0.9), 5.0);
}

TEST(LocalSummaryTest, InterpolatedRankTracksTrueRank) {
  Rng rng(2);
  std::vector<double> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.UniformDouble());
  Node node = MakeNode(0.0, 1.0, keys);
  const LocalSummary s = ComputeLocalSummary(node, 16);
  for (double x : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double true_rank = static_cast<double>(node.RankOf(x));
    // Interpolation through 16 quantiles: error bounded by ~c/q.
    EXPECT_NEAR(s.InterpolatedRank(x), true_rank, 1000.0 / 15.0 + 10.0);
  }
}

TEST(LocalSummaryTest, InterpolatedRankEmpty) {
  Node node = MakeNode(0.0, 1.0, {});
  const LocalSummary s = ComputeLocalSummary(node, 4);
  EXPECT_DOUBLE_EQ(s.InterpolatedRank(0.5), 0.0);
}

TEST(LocalSummaryTest, SingleItemSummary) {
  Node node = MakeNode(0.0, 1.0, {0.6});
  const LocalSummary s = ComputeLocalSummary(node, 4);
  EXPECT_EQ(s.item_count, 1u);
  // All quantiles collapse onto the single key.
  for (double q : s.quantiles) EXPECT_DOUBLE_EQ(q, 0.6);
  EXPECT_DOUBLE_EQ(s.InterpolatedRank(0.59), 0.0);
  EXPECT_DOUBLE_EQ(s.InterpolatedRank(0.6), 1.0);
}

TEST(LocalSummaryTest, EncodedBytesFormula) {
  Node node = MakeNode(0.0, 0.5, {0.1, 0.2});
  const LocalSummary s = ComputeLocalSummary(node, 8);
  EXPECT_EQ(s.EncodedBytes(), 24u + 8u * 8u);
}

TEST(LocalSummaryTest, SketchedSummaryApproximatesExact) {
  Rng rng(7);
  std::vector<double> keys;
  for (int i = 0; i < 5000; ++i) keys.push_back(rng.UniformDouble());
  Node node = MakeNode(0.0, 1.0, keys);
  const LocalSummary exact = ComputeLocalSummary(node, 8);
  const LocalSummary sketched =
      ComputeLocalSummarySketched(node, 8, /*sketch_epsilon=*/0.01);
  ASSERT_EQ(sketched.quantiles.size(), exact.quantiles.size());
  EXPECT_EQ(sketched.item_count, exact.item_count);
  for (size_t i = 0; i < exact.quantiles.size(); ++i) {
    // Uniform keys: rank error eps*n translates ~1:1 into value error.
    EXPECT_NEAR(sketched.quantiles[i], exact.quantiles[i], 0.05) << i;
  }
}

TEST(LocalSummaryTest, SketchedSummaryMonotoneQuantiles) {
  Rng rng(9);
  std::vector<double> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back(rng.Normal(0.5, 0.1));
  Node node = MakeNode(0.0, 1.0, keys);
  const LocalSummary s = ComputeLocalSummarySketched(node, 16, 0.05);
  for (size_t i = 1; i < s.quantiles.size(); ++i) {
    EXPECT_LE(s.quantiles[i - 1], s.quantiles[i]);
  }
}

TEST(LocalSummaryTest, SketchedEmptyNode) {
  Node node = MakeNode(0.2, 0.4, {});
  const LocalSummary s = ComputeLocalSummarySketched(node, 8, 0.02);
  EXPECT_EQ(s.item_count, 0u);
  EXPECT_TRUE(s.quantiles.empty());
}

TEST(LocalSummaryTest, WrappedArcWidth) {
  // Arc (0.9, 0.1]: wraps the domain boundary; width 0.2.
  Node node = MakeNode(0.9, 0.1, {0.95, 0.05});
  const LocalSummary s = ComputeLocalSummary(node, 2);
  EXPECT_NEAR(s.ArcWidth(), 0.2, 1e-9);
  EXPECT_NEAR(s.Density(), 10.0, 1e-6);
}

}  // namespace
}  // namespace ringdde
