#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/retry_policy.h"
#include "core/density_estimator.h"
#include "core/probe.h"
#include "sim/fault_injector.h"

namespace ringdde {
namespace {

/// A ring whose network routes reliably but whose probe exchanges run
/// against the given fault plan.
struct FaultedDeployment {
  std::unique_ptr<Network> net;
  std::unique_ptr<ChordRing> ring;
};

FaultedDeployment BuildFaulted(size_t peers, size_t items,
                               const FaultOptions& faults,
                               uint64_t ring_seed = 11) {
  FaultedDeployment d;
  NetworkOptions nopts;
  nopts.faults = std::make_shared<FaultInjector>(faults);
  d.net = std::make_unique<Network>(nopts);
  RingOptions ropts;
  ropts.seed = ring_seed;
  d.ring = std::make_unique<ChordRing>(d.net.get(), ropts);
  EXPECT_TRUE(d.ring->CreateNetwork(peers).ok());
  Rng rng(ring_seed ^ 0xDA7A);
  for (size_t i = 0; i < items; ++i) {
    EXPECT_TRUE(d.ring->InsertKeyBulk(rng.UniformDouble()).ok());
  }
  return d;
}

TEST(ProbeFailureTest, CrashedOwnerYieldsNonOkResult) {
  FaultOptions faults;
  faults.crash_probability = 1.0;  // every destination is dead from t=0
  FaultedDeployment d = BuildFaulted(64, 1000, faults);

  CdfProber prober(d.ring.get());  // default policy: single attempt
  const NodeAddr querier = d.ring->AliveAddrs()[0];
  Result<LocalSummary> r =
      prober.Probe(querier, RingId(0x8000000000000000ULL));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable() || r.status().IsTimedOut())
      << r.status().ToString();
  EXPECT_EQ(prober.failed_probes(), 1u);
  EXPECT_EQ(d.net->counters().failed_probes, 1u);
}

TEST(ProbeFailureTest, RetryStopsAtAttemptCap) {
  FaultOptions faults;
  faults.crash_probability = 1.0;  // no retry can ever succeed
  FaultedDeployment d = BuildFaulted(64, 1000, faults);

  ProbeOptions popts;
  popts.retry.max_attempts = 4;
  CdfProber prober(d.ring.get(), popts);
  const NodeAddr querier = d.ring->AliveAddrs()[0];
  Result<LocalSummary> r =
      prober.Probe(querier, RingId(0x4000000000000000ULL));
  ASSERT_FALSE(r.ok());
  // Exactly max_attempts - 1 retries were spent, then the probe failed.
  EXPECT_EQ(prober.retries(), 3u);
  EXPECT_EQ(prober.failed_probes(), 1u);
  EXPECT_EQ(d.net->counters().retries, 3u);
  EXPECT_EQ(d.net->counters().failed_probes, 1u);

  // A second probe spends its own cap; totals accumulate.
  (void)prober.Probe(querier, RingId(0xC000000000000000ULL));
  EXPECT_EQ(prober.retries(), 6u);
  EXPECT_EQ(prober.failed_probes(), 2u);
}

TEST(ProbeFailureTest, BackoffBudgetCapsWaitedTime) {
  FaultOptions faults;
  faults.crash_probability = 1.0;
  FaultedDeployment d = BuildFaulted(64, 1000, faults);

  ProbeOptions popts;
  popts.retry.max_attempts = 100;
  popts.retry.initial_backoff_seconds = 0.5;
  popts.retry.budget_seconds = 1.0;  // allows the first retry only
  CdfProber prober(d.ring.get(), popts);
  const NodeAddr querier = d.ring->AliveAddrs()[0];
  Result<LocalSummary> r =
      prober.Probe(querier, RingId(0x8000000000000000ULL));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimedOut()) << r.status().ToString();
  // initial=0.5 fits the 1.0s budget; the next backoff (~1.0s) does not.
  EXPECT_EQ(prober.retries(), 1u);
}

TEST(RetryPolicyTest, BackoffSequenceIsDeterministic) {
  RetryPolicy a;
  a.max_attempts = 8;
  a.seed = 0xB0FF;
  RetryPolicy b = a;
  for (uint64_t task = 0; task < 16; ++task) {
    for (int k = 1; k < a.max_attempts; ++k) {
      EXPECT_EQ(a.BackoffSeconds(task, k), b.BackoffSeconds(task, k));
    }
  }
  // A different seed or task index yields a different jitter stream.
  RetryPolicy c = a;
  c.seed = 0xB0FF + 1;
  EXPECT_NE(a.BackoffSeconds(0, 1), c.BackoffSeconds(0, 1));
  EXPECT_NE(a.BackoffSeconds(0, 1), a.BackoffSeconds(1, 1));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithinJitterBand) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.05;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 2.0;
  p.jitter_fraction = 0.1;
  double base = p.initial_backoff_seconds;
  for (int k = 1; k <= 10; ++k) {
    const double backoff = p.BackoffSeconds(/*task=*/3, k);
    EXPECT_GE(backoff, base * (1.0 - p.jitter_fraction) - 1e-12);
    EXPECT_LE(backoff, base * (1.0 + p.jitter_fraction) + 1e-12);
    base = std::min(base * p.backoff_multiplier, p.max_backoff_seconds);
  }
}

// Property: under arbitrary drop/crash mixes the probing layer never
// double-counts an owner (each summary's peer appears once) and every
// estimate it does produce is a valid CDF — monotone, inside [0, 1].
TEST(ProbeFailureTest, FaultedProbingKeepsOwnersUniqueAndCdfMonotone) {
  int estimates_ok = 0;
  for (uint64_t trial = 0; trial < 12; ++trial) {
    FaultOptions faults;
    faults.drop_probability = 0.30;
    faults.crash_probability = 0.10;
    faults.seed = 0xFA17 + trial;
    FaultedDeployment d =
        BuildFaulted(64, 2000, faults, /*ring_seed=*/11 + trial);

    // Owners stay unique even when probes fail and get retried.
    ProbeOptions popts;
    popts.retry.max_attempts = 3;
    CdfProber prober(d.ring.get(), popts);
    const NodeAddr querier = d.ring->AliveAddrs()[0];
    std::vector<LocalSummary> summaries;
    Rng rng(23 + trial);
    prober.ProbeUniform(querier, 48, rng, &summaries);
    std::set<NodeAddr> owners;
    for (const LocalSummary& s : summaries) {
      EXPECT_TRUE(owners.insert(s.addr).second)
          << "owner " << s.addr << " double-counted (trial " << trial
          << ")";
    }

    // End-to-end: a degraded estimate is still a CDF.
    DdeOptions dopts;
    dopts.num_probes = 48;
    dopts.seed = 31 + trial;
    dopts.retry.max_attempts = 3;
    DistributionFreeEstimator est(d.ring.get(), dopts);
    Result<DensityEstimate> e = est.Estimate(querier);
    if (!e.ok()) continue;  // total outage is legal under heavy faults
    ++estimates_ok;
    double prev = 0.0;
    for (int g = 0; g <= 256; ++g) {
      const double x = static_cast<double>(g) / 256.0;
      const double v = e->cdf.Evaluate(x);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
      EXPECT_GE(v, prev - 1e-12) << "CDF not monotone at " << x;
      prev = v;
    }
    EXPECT_EQ(e->cdf.Evaluate(1.0), 1.0);
    // Degradation accounting is coherent.
    EXPECT_LE(e->failed_probes, e->probes_requested);
    EXPECT_GT(e->ConfidenceEpsilon(), 0.0);
    EXPECT_LE(e->ConfidenceEpsilon(), 1.0);
  }
  // The mix is survivable: most trials must produce an estimate.
  EXPECT_GE(estimates_ok, 8);
}

}  // namespace
}  // namespace ringdde
