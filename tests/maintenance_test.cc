#include "core/maintenance.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/churn.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void Build(size_t n = 256) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    dist_ = std::make_unique<TruncatedNormalDistribution>(0.5, 0.15);
    Rng rng(1);
    const Dataset ds = GenerateDataset(*dist_, 50000, rng);
    ring_->InsertDatasetBulk(ds.keys);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  std::unique_ptr<Distribution> dist_;
};

TEST_F(MaintenanceTest, StartRunsInitialEstimate) {
  Build();
  DdeOptions opts;
  opts.num_probes = 64;
  EstimateMaintainer m(ring_.get(), opts);
  ASSERT_TRUE(m.Start(ring_->AliveAddrs()[0]).ok());
  ASSERT_TRUE(m.current().has_value());
  EXPECT_EQ(m.refreshes(), 1u);
  EXPECT_DOUBLE_EQ(m.StalenessSeconds(), 0.0);
}

TEST_F(MaintenanceTest, DoubleStartRejected) {
  Build();
  EstimateMaintainer m(ring_.get(), DdeOptions{});
  ASSERT_TRUE(m.Start(ring_->AliveAddrs()[0]).ok());
  EXPECT_EQ(m.Start(ring_->AliveAddrs()[1]).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MaintenanceTest, DeadOwnerRejectedAtStart) {
  Build();
  const NodeAddr victim = ring_->AliveAddrs()[0];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  EstimateMaintainer m(ring_.get(), DdeOptions{});
  EXPECT_TRUE(m.Start(victim).IsInvalidArgument());
}

TEST_F(MaintenanceTest, PeriodicRefreshKeepsStalenessBounded) {
  Build();
  DdeOptions opts;
  opts.num_probes = 32;
  MaintenanceOptions mopts;
  mopts.refresh_period_seconds = 10.0;
  EstimateMaintainer m(ring_.get(), opts, mopts);
  ASSERT_TRUE(m.Start(ring_->AliveAddrs()[0]).ok());
  net_->events().RunUntil(100.0);
  EXPECT_GE(m.refreshes(), 10u);
  EXPECT_LE(m.StalenessSeconds(), 10.0 + 1e-9);
}

TEST_F(MaintenanceTest, IncrementalRefreshCostsLess) {
  Build();
  DdeOptions opts;
  opts.num_probes = 128;

  MaintenanceOptions full;
  full.refresh_period_seconds = 10.0;
  full.incremental = false;

  MaintenanceOptions inc = full;
  inc.incremental = true;
  inc.incremental_fraction = 0.25;

  uint64_t cost_full = 0, cost_inc = 0;
  for (int mode = 0; mode < 2; ++mode) {
    Build();
    EstimateMaintainer m(ring_.get(), opts, mode == 0 ? full : inc);
    ASSERT_TRUE(m.Start(ring_->AliveAddrs()[0]).ok());
    const uint64_t before = net_->counters().messages;
    net_->events().RunUntil(100.0);
    const uint64_t spent = net_->counters().messages - before;
    (mode == 0 ? cost_full : cost_inc) = spent;
  }
  EXPECT_LT(cost_inc, cost_full / 2);
}

TEST_F(MaintenanceTest, IncrementalStaysAccurateOnStaticData) {
  Build();
  DdeOptions opts;
  opts.num_probes = 128;
  MaintenanceOptions mopts;
  mopts.refresh_period_seconds = 10.0;
  mopts.incremental = true;
  EstimateMaintainer m(ring_.get(), opts, mopts);
  ASSERT_TRUE(m.Start(ring_->AliveAddrs()[0]).ok());
  net_->events().RunUntil(100.0);
  ASSERT_TRUE(m.current().has_value());
  EXPECT_LT(CompareCdfToTruth(m.current()->cdf, *dist_).ks, 0.08);
}

TEST_F(MaintenanceTest, SurvivesChurnAndMigratesOwner) {
  Build();
  ChurnOptions copts;
  copts.mean_session_seconds = 50.0;
  ChurnProcess churn(ring_.get(), copts);
  churn.Start();

  DdeOptions opts;
  opts.num_probes = 48;
  MaintenanceOptions mopts;
  mopts.refresh_period_seconds = 20.0;
  EstimateMaintainer m(ring_.get(), opts, mopts);
  ASSERT_TRUE(m.Start(ring_->AliveAddrs()[0]).ok());
  net_->events().RunUntil(500.0);
  // Many refreshes happened despite the original owner likely departing.
  EXPECT_GE(m.refreshes(), 20u);
  ASSERT_TRUE(m.current().has_value());
  EXPECT_LT(CompareCdfToTruth(m.current()->cdf, *dist_).ks, 0.15);
}

}  // namespace
}  // namespace ringdde
