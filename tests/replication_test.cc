#include "ring/replication.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/dataset.h"
#include "data/distribution.h"

namespace ringdde {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  void Build(size_t n, uint32_t factor, size_t items = 10000) {
    net_ = std::make_unique<Network>();
    RingOptions ropts;
    ropts.durable_data = false;  // replication is the only safety net
    ring_ = std::make_unique<ChordRing>(net_.get(), ropts);
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(1);
    UniformDistribution dist;
    ring_->InsertDatasetBulk(GenerateDataset(dist, items, rng).keys);
    ReplicationOptions opts;
    opts.replication_factor = factor;
    repl_ = std::make_unique<ReplicationManager>(ring_.get(), opts);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
  std::unique_ptr<ReplicationManager> repl_;
};

TEST_F(ReplicationTest, FullSyncPlacesReplicasOnSuccessors) {
  Build(32, 2);
  repl_->FullSync();
  for (NodeAddr addr : ring_->AliveAddrs()) {
    const Node* node = ring_->GetNode(addr);
    // Each node's keys should be mirrored on its first 2 alive successors.
    uint32_t holders = 0;
    for (const NodeEntry& e : node->successors()) {
      const Node* succ = ring_->GetNode(e.addr);
      if (succ != nullptr && succ->HasReplica(addr)) ++holders;
    }
    EXPECT_GE(holders, 2u);
  }
}

TEST_F(ReplicationTest, FullSyncChargesMessages) {
  Build(32, 2);
  const uint64_t before = net_->counters().messages;
  repl_->FullSync();
  // One message per (node, replica target): 32 * 2.
  EXPECT_EQ(net_->counters().messages - before, 64u);
  EXPECT_GT(net_->counters().bytes, 10000u * 8u * 2u);  // all keys, twice
}

TEST_F(ReplicationTest, CrashRecoveryPreservesData) {
  Build(32, 2);
  repl_->FullSync();
  const uint64_t before = ring_->TotalItems();
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    Result<NodeAddr> victim = ring_->RandomAliveNode(rng);
    Result<uint64_t> recovered = repl_->CrashWithRecovery(*victim);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // Maintenance between failures: successor lists are repaired and
    // degraded replica placements re-pushed, as the background cycle
    // would between well-spaced crashes.
    ring_->StabilizeAll();
    repl_->IncrementalSync();
  }
  EXPECT_EQ(ring_->TotalItems(), before);
  EXPECT_EQ(repl_->keys_lost(), 0u);
  EXPECT_GT(repl_->keys_recovered(), 0u);
}

TEST_F(ReplicationTest, WithoutSyncDataIsLost) {
  Build(32, 2);
  // No FullSync: no replicas anywhere.
  NodeAddr victim = 0;
  for (NodeAddr a : ring_->AliveAddrs()) {
    if (ring_->GetNode(a)->item_count() > 0) {
      victim = a;
      break;
    }
  }
  ASSERT_NE(victim, 0u);
  const uint64_t victim_items = ring_->GetNode(victim)->item_count();
  const uint64_t before = ring_->TotalItems();
  Result<uint64_t> recovered = repl_->CrashWithRecovery(victim);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 0u);
  EXPECT_EQ(repl_->keys_lost(), victim_items);
  EXPECT_EQ(ring_->TotalItems(), before - victim_items);
}

TEST_F(ReplicationTest, StaleReplicaLosesOnlyTheDelta) {
  Build(32, 1);
  repl_->FullSync();
  // New data arrives at one node AFTER the sync.
  NodeAddr victim = ring_->AliveAddrs()[5];
  Node* node = ring_->GetNode(victim);
  const uint64_t synced_count = node->item_count();
  // Insert 10 keys directly into the victim's arc.
  const double arc_hi = node->id().ToUnit();
  for (int i = 1; i <= 10; ++i) {
    node->InsertKey(arc_hi);  // guaranteed in its own arc (position id)
  }
  Result<uint64_t> recovered = repl_->CrashWithRecovery(victim);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, synced_count);
  EXPECT_EQ(repl_->keys_lost(), 10u);
}

TEST_F(ReplicationTest, IncrementalSyncSkipsUnchangedNodes) {
  Build(32, 2);
  repl_->FullSync();
  // Nothing changed: incremental ships nothing.
  EXPECT_EQ(repl_->IncrementalSync(), 0u);
  // Change one node; only that node re-pushes.
  Node* node = ring_->GetNode(ring_->AliveAddrs()[3]);
  node->InsertKey(node->id().ToUnit());
  const uint64_t shipped = repl_->IncrementalSync();
  EXPECT_EQ(shipped, node->item_count());
}

TEST_F(ReplicationTest, RecoveryCostsMessagesOnlyWhenRemote) {
  Build(32, 1);
  repl_->FullSync();
  // With factor 1 the replica sits exactly on the successor, which is also
  // the new owner: promotion is local, only re-protection costs a message.
  Rng rng(5);
  Result<NodeAddr> victim = ring_->RandomAliveNode(rng);
  const uint64_t before = net_->counters().messages;
  ASSERT_TRUE(repl_->CrashWithRecovery(*victim).ok());
  const uint64_t spent = net_->counters().messages - before;
  EXPECT_GE(spent, 1u);  // the re-protect push
  EXPECT_LE(spent, 3u);
}

TEST_F(ReplicationTest, RefusesDurableDataRings) {
  Network net;
  ChordRing ring(&net);  // durable_data defaults to true
  ASSERT_TRUE(ring.CreateNetwork(8).ok());
  ReplicationManager repl(&ring);
  EXPECT_EQ(repl.CrashWithRecovery(ring.AliveAddrs()[0]).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationTest, CrashOfDeadNodeRejected) {
  Build(8, 1);
  NodeAddr victim = ring_->AliveAddrs()[1];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  EXPECT_TRUE(repl_->CrashWithRecovery(victim).status().IsNotFound());
}

TEST_F(ReplicationTest, StartRunsPeriodicSyncs) {
  Build(16, 2);
  repl_->Start();
  const uint64_t after_full = repl_->syncs();
  EXPECT_EQ(after_full, 1u);
  net_->events().RunUntil(100.0);  // default period 30s: ~3 more cycles
  EXPECT_GE(repl_->syncs(), 3u);
}

TEST_F(ReplicationTest, ReplicaStoreInvisibleToPrimaries) {
  Build(16, 2);
  const uint64_t total_before = ring_->TotalItems();
  repl_->FullSync();
  EXPECT_EQ(ring_->TotalItems(), total_before);
  // But replicas exist.
  size_t replica_keys = 0;
  for (NodeAddr a : ring_->AliveAddrs()) {
    replica_keys += ring_->GetNode(a)->replica_key_count();
  }
  EXPECT_EQ(replica_keys, total_before * 2);
}

}  // namespace
}  // namespace ringdde
