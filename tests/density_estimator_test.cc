#include "core/density_estimator.h"

#include <gtest/gtest.h>

#include <memory>

#include "data/dataset.h"
#include "data/distribution.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

class EstimatorTest : public ::testing::Test {
 protected:
  void Build(size_t n, const Distribution& dist, size_t items,
             uint64_t seed = 1) {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(n).ok());
    Rng rng(seed);
    const Dataset ds = GenerateDataset(dist, items, rng);
    ring_->InsertDatasetBulk(ds.keys);
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(EstimatorTest, EstimateSucceedsAndIsAccurate) {
  TruncatedNormalDistribution dist(0.5, 0.15);
  Build(1024, dist, 100000);
  DdeOptions opts;
  opts.num_probes = 256;
  DistributionFreeEstimator est(ring_.get(), opts);
  auto e = est.Estimate(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  const AccuracyReport r = CompareCdfToTruth(e->cdf, dist);
  EXPECT_LT(r.ks, 0.05);
  EXPECT_NEAR(e->estimated_total_items, 100000.0, 10000.0);
  EXPECT_GT(e->peers_probed, 0u);
  EXPECT_GT(e->cost.messages, 0u);
}

TEST_F(EstimatorTest, MoreProbesMoreAccurate) {
  ZipfDistribution dist(500, 0.9);
  Build(2048, dist, 100000);
  double prev_ks = 1.0;
  int improvements = 0;
  for (size_t m : {32, 128, 512}) {
    DdeOptions opts;
    opts.num_probes = m;
    opts.seed = 7;
    DistributionFreeEstimator est(ring_.get(), opts);
    auto e = est.Estimate(ring_->AliveAddrs()[0]);
    ASSERT_TRUE(e.ok());
    const double ks = CompareCdfToTruth(e->cdf, dist).ks;
    if (ks < prev_ks) ++improvements;
    prev_ks = ks;
  }
  EXPECT_GE(improvements, 1);  // monotone in expectation; allow one flip
  EXPECT_LT(prev_ks, 0.05);    // 512 probes of 2048 peers: tight fit
}

TEST_F(EstimatorTest, CostScalesWithProbes) {
  UniformDistribution dist;
  Build(1024, dist, 50000);
  uint64_t prev_msgs = 0;
  for (size_t m : {32, 128, 512}) {
    DdeOptions opts;
    opts.num_probes = m;
    DistributionFreeEstimator est(ring_.get(), opts);
    auto e = est.Estimate(ring_->AliveAddrs()[0]);
    ASSERT_TRUE(e.ok());
    EXPECT_GT(e->cost.messages, prev_msgs);
    prev_msgs = e->cost.messages;
  }
}

TEST_F(EstimatorTest, DeadQuerierRejected) {
  UniformDistribution dist;
  Build(64, dist, 1000);
  const NodeAddr victim = ring_->AliveAddrs()[0];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  DistributionFreeEstimator est(ring_.get());
  EXPECT_TRUE(est.Estimate(victim).status().IsInvalidArgument());
}

TEST_F(EstimatorTest, EmptyNetworkDataYieldsUniformFallback) {
  UniformDistribution dist;
  Build(64, dist, 0);
  DistributionFreeEstimator est(ring_.get());
  auto e = est.Estimate(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->estimated_total_items, 0.0);
  EXPECT_NEAR(e->cdf.Evaluate(0.5), 0.5, 1e-9);
}

TEST_F(EstimatorTest, RefinementImprovesSkewedAccuracyAtSmallBudget) {
  // Heavy skew, small probe budget: inversion-guided refinement should on
  // average beat uniform-only probing. Compare over repetitions.
  ZipfDistribution dist(1000, 1.1);
  double err_uniform = 0.0, err_refined = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Build(2048, dist, 100000, seed);
    for (int rounds : {1, 3}) {
      DdeOptions opts;
      opts.num_probes = 96;
      opts.refinement_rounds = rounds;
      opts.seed = seed * 100;
      DistributionFreeEstimator est(ring_.get(), opts);
      auto e = est.Estimate(ring_->AliveAddrs()[0]);
      ASSERT_TRUE(e.ok());
      const double ks = CompareCdfToTruth(e->cdf, dist).ks;
      (rounds == 1 ? err_uniform : err_refined) += ks;
    }
  }
  EXPECT_LT(err_refined, err_uniform * 1.1);  // at worst comparable
}

TEST_F(EstimatorTest, SmoothedPdfIntegratesToOne) {
  TruncatedNormalDistribution dist(0.5, 0.1);
  Build(512, dist, 50000);
  DistributionFreeEstimator est(ring_.get());
  auto e = est.Estimate(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  auto kde = e->SmoothedPdf(512);
  ASSERT_TRUE(kde.ok());
  double integral = 0.0;
  const int grid = 2000;
  for (int i = 0; i < grid; ++i) {
    integral += kde->Pdf(-0.5 + 2.0 * (i + 0.5) / grid) * 2.0 / grid;
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST_F(EstimatorTest, QuantileAccessorsConsistent) {
  UniformDistribution dist;
  Build(512, dist, 50000);
  DistributionFreeEstimator est(ring_.get());
  auto e = est.Estimate(ring_->AliveAddrs()[0]);
  ASSERT_TRUE(e.ok());
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(e->Cdf(e->Quantile(p)), p, 1e-6);
  }
}

TEST_F(EstimatorTest, EstimateWithCarryOverReusesSummaries) {
  UniformDistribution dist;
  Build(512, dist, 50000);
  DdeOptions opts;
  opts.num_probes = 128;
  DistributionFreeEstimator est(ring_.get(), opts);
  std::vector<LocalSummary> pool;
  auto first = est.EstimateWith(ring_->AliveAddrs()[0], &pool, 128);
  ASSERT_TRUE(first.ok());
  const size_t pooled = pool.size();
  EXPECT_GT(pooled, 0u);
  // Second run with zero fresh probes must cost nothing new for probing
  // (reconstruction is local).
  auto second = est.EstimateWith(ring_->AliveAddrs()[0], &pool, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(pool.size(), pooled);
  EXPECT_EQ(second->cost.messages, 0u);
}

}  // namespace
}  // namespace ringdde
