#include "sim/fault_injector.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace ringdde {
namespace {

FaultOptions BusyPlan(uint64_t seed) {
  FaultOptions o;
  o.drop_probability = 0.10;
  o.duplicate_probability = 0.05;
  o.delay_probability = 0.20;
  o.delay_mean_seconds = 0.25;
  o.crash_probability = 0.10;
  o.hang_probability = 0.15;
  o.hang_duration_seconds = 2.0;
  o.partitions.push_back(PartitionWindow{10.0, 20.0});
  o.seed = seed;
  return o;
}

/// One message verdict flattened to comparable plain bytes.
struct FlatFault {
  uint8_t drop = 0;
  uint8_t duplicate = 0;
  double extra_delay_seconds = 0.0;

  bool operator==(const FlatFault& other) const {
    return drop == other.drop && duplicate == other.duplicate &&
           extra_delay_seconds == other.extra_delay_seconds;
  }
};

/// Evaluates the first `n` message verdicts of `plan` on `pool`, in an
/// order the pool chooses. The result must not depend on that order.
std::vector<FlatFault> Schedule(const FaultOptions& plan, size_t n,
                                ThreadPool& pool) {
  FaultInjector injector(plan);
  std::vector<FlatFault> out(n);
  pool.ParallelFor(0, n, [&](size_t i) {
    const MessageFault f = injector.DecideMessage(i);
    out[i] = FlatFault{static_cast<uint8_t>(f.drop),
                       static_cast<uint8_t>(f.duplicate),
                       f.extra_delay_seconds};
  });
  return out;
}

TEST(FaultInjectorTest, ScheduleIsIdenticalAtAnyThreadCount) {
  const FaultOptions plan = BusyPlan(0xFA17);
  const size_t kMessages = 20000;

  ThreadPool serial(0);    // concurrency 1
  ThreadPool quad(3);      // concurrency 4
  ThreadPool sixteen(15);  // concurrency 16
  const std::vector<FlatFault> s1 = Schedule(plan, kMessages, serial);
  const std::vector<FlatFault> s4 = Schedule(plan, kMessages, quad);
  const std::vector<FlatFault> s16 = Schedule(plan, kMessages, sixteen);

  // Byte-identical: same drops, same duplicates, bit-equal delays.
  ASSERT_EQ(s1.size(), s4.size());
  ASSERT_EQ(s1.size(), s16.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    ASSERT_TRUE(s1[i] == s4[i]) << "message " << i;
    ASSERT_TRUE(s1[i] == s16[i]) << "message " << i;
  }
}

TEST(FaultInjectorTest, SameSeedSamePlanDifferentSeedDifferentPlan) {
  ThreadPool serial(0);
  const std::vector<FlatFault> a = Schedule(BusyPlan(7), 5000, serial);
  const std::vector<FlatFault> b = Schedule(BusyPlan(7), 5000, serial);
  const std::vector<FlatFault> c = Schedule(BusyPlan(8), 5000, serial);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(FaultInjectorTest, MessageFaultRatesConvergeToProbabilities) {
  const FaultOptions plan = BusyPlan(0xFA17);
  FaultInjector injector(plan);
  const size_t kMessages = 200000;
  size_t drops = 0, dups = 0, delays = 0;
  double delay_sum = 0.0;
  for (size_t i = 0; i < kMessages; ++i) {
    const MessageFault f = injector.DecideMessage(i);
    drops += f.drop ? 1 : 0;
    dups += f.duplicate ? 1 : 0;
    if (f.extra_delay_seconds > 0.0) {
      ++delays;
      delay_sum += f.extra_delay_seconds;
    }
  }
  const double n = static_cast<double>(kMessages);
  EXPECT_NEAR(drops / n, plan.drop_probability, 0.005);
  EXPECT_NEAR(dups / n, plan.duplicate_probability, 0.005);
  EXPECT_NEAR(delays / n, plan.delay_probability, 0.005);
  // Exponential delays with the configured mean.
  EXPECT_NEAR(delay_sum / static_cast<double>(delays),
              plan.delay_mean_seconds, 0.01);
}

TEST(FaultInjectorTest, NodeFaultRatesConvergeToProbabilities) {
  const FaultOptions plan = BusyPlan(0xFA17);
  FaultInjector injector(plan);
  const size_t kNodes = 50000;
  size_t crashed = 0, hung = 0;
  for (uint64_t addr = 0; addr < kNodes; ++addr) {
    // Defaults put crash windows at [0, forever) and hang windows at
    // [0, hang_duration), so t inside the hang window sees both families.
    crashed += injector.IsCrashed(addr, 1.0) ? 1 : 0;
    hung += injector.IsHung(addr, 1.0) ? 1 : 0;
  }
  const double n = static_cast<double>(kNodes);
  EXPECT_NEAR(crashed / n, plan.crash_probability, 0.01);
  EXPECT_NEAR(hung / n, plan.hang_probability, 0.01);
}

TEST(FaultInjectorTest, CrashAndHangWindowsRespectTime) {
  FaultOptions o;
  o.crash_probability = 1.0;
  o.crash_start_max_seconds = 0.0;
  o.crash_duration_seconds = 5.0;
  o.hang_probability = 1.0;
  o.hang_start_max_seconds = 0.0;
  o.hang_duration_seconds = 1.0;
  FaultInjector injector(o);
  EXPECT_TRUE(injector.IsCrashed(/*addr=*/1, /*now=*/0.0));
  EXPECT_TRUE(injector.IsCrashed(1, 4.999));
  EXPECT_FALSE(injector.IsCrashed(1, 5.0));  // window end is exclusive
  EXPECT_TRUE(injector.IsHung(1, 0.5));
  EXPECT_FALSE(injector.IsHung(1, 1.0));  // alive again after the pause
}

TEST(FaultInjectorTest, PartitionsHealOnSchedule) {
  FaultOptions o;
  o.partitions.push_back(PartitionWindow{10.0, 20.0});
  o.minority_fraction = 0.5;
  o.seed = 0xFA17;
  FaultInjector injector(o);

  // Find one node on each side of the hash-assigned split.
  uint64_t minority = 0, majority = 0;
  bool have_min = false, have_maj = false;
  for (uint64_t addr = 0; addr < 1000 && !(have_min && have_maj); ++addr) {
    if (injector.OnMinoritySide(addr)) {
      minority = addr;
      have_min = true;
    } else {
      majority = addr;
      have_maj = true;
    }
  }
  ASSERT_TRUE(have_min && have_maj);

  // Split active exactly during [start, end): cross-side traffic fails,
  // same-side traffic never does, and the partition heals at end_seconds.
  EXPECT_FALSE(injector.IsPartitioned(minority, majority, 9.999));
  EXPECT_TRUE(injector.IsPartitioned(minority, majority, 10.0));
  EXPECT_TRUE(injector.IsPartitioned(majority, minority, 15.0));
  EXPECT_FALSE(injector.IsPartitioned(minority, majority, 20.0));
  EXPECT_FALSE(injector.IsPartitioned(minority, minority, 15.0));
  EXPECT_FALSE(injector.IsPartitioned(majority, majority, 15.0));
}

TEST(FaultInjectorTest, MinoritySideFractionConverges) {
  FaultOptions o;
  o.partitions.push_back(PartitionWindow{0.0, 1.0});
  o.minority_fraction = 0.25;
  FaultInjector injector(o);
  size_t minority = 0;
  const size_t kNodes = 50000;
  for (uint64_t addr = 0; addr < kNodes; ++addr) {
    minority += injector.OnMinoritySide(addr) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(minority) / kNodes, 0.25, 0.01);
}

TEST(FaultInjectorTest, NullPlanIsFaultFree) {
  FaultInjector injector{FaultOptions{}};
  for (uint64_t i = 0; i < 1000; ++i) {
    const MessageFault f = injector.DecideMessage(i);
    EXPECT_FALSE(f.drop);
    EXPECT_FALSE(f.duplicate);
    EXPECT_EQ(f.extra_delay_seconds, 0.0);
    EXPECT_FALSE(injector.IsCrashed(i, 100.0));
    EXPECT_FALSE(injector.IsHung(i, 100.0));
    EXPECT_FALSE(injector.IsPartitioned(i, i + 1, 100.0));
  }
}

}  // namespace
}  // namespace ringdde
