// RpcServer/MultiplexedRpcChannel hardening: adversarial fragmentation
// (frames delivered one byte at a time, split mid-header, many frames
// interleaved in one write), malformed-stream teardown, out-of-order
// pipelined awaits, a many-channel soak, and the connection-slot reaping
// contract — all exercised against BOTH server modes (epoll event loop
// and thread-per-connection), since the reassembly path must behave
// identically regardless of who pumps the socket.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "sim/rpc_server.h"
#include "sim/socket_transport.h"

namespace ringdde {
namespace {

bool SmokeRun() {
  const char* v = std::getenv("RINGDDE_SMOKE");
  return v != nullptr && v[0] == '1';
}

Status EchoHandler(const Frame& request, Frame* reply) {
  reply->type = request.type;
  reply->payload = request.payload;
  return Status::OK();
}

/// Raw client socket: lets tests control exactly which bytes hit the
/// server's reassembly buffer and when.
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const uint8_t* data, size_t len) {
    size_t sent = 0;
    while (sent < len) {
      ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Sends `bytes` in `chunk`-byte pieces with a scheduling yield between
  /// them, forcing the server to reassemble across many partial reads.
  bool SendFragmented(const std::vector<uint8_t>& bytes, size_t chunk) {
    for (size_t off = 0; off < bytes.size(); off += chunk) {
      const size_t n = std::min(chunk, bytes.size() - off);
      if (!Send(bytes.data() + off, n)) return false;
      std::this_thread::yield();
    }
    return true;
  }

  /// Reads until `want` complete frames decode (or error/EOF/timeout).
  bool ReadFrames(size_t want, std::vector<Frame>* out) {
    while (out->size() < want) {
      size_t consumed = 0;
      Frame frame;
      Status decoded = DecodeFrameInto(buffer_.data() + parsed_,
                                       buffer_.size() - parsed_, &frame,
                                       &consumed);
      if (decoded.ok()) {
        parsed_ += consumed;
        out->push_back(std::move(frame));
        continue;
      }
      if (decoded.code() != StatusCode::kOutOfRange) {
        return false;  // poisoned stream
      }
      uint8_t chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.insert(buffer_.end(), chunk, chunk + n);
    }
    return true;
  }

  /// True once the server closes this connection (recv returns 0).
  bool WaitForClose() {
    uint8_t chunk[256];
    while (true) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout or error, not a clean close
    }
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
  size_t parsed_ = 0;
};

class RpcMuxTest : public ::testing::TestWithParam<RpcServerMode> {
 protected:
  RpcServerOptions Options() const {
    RpcServerOptions options;
    options.mode = GetParam();
    return options;
  }
};

TEST_P(RpcMuxTest, OneByteAtATimeFragmentation) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());
  {
    RawClient raw(server.port());
    ASSERT_TRUE(raw.connected());

    // A v1 and a v2 frame, every byte its own send().
    std::vector<uint8_t> wire;
    const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7};
    EncodeFrame(static_cast<uint8_t>(RpcType::kHello), payload, &wire);
    EncodeMuxFrame(static_cast<uint8_t>(RpcType::kHello), 0xC1D, payload,
                   &wire);
    ASSERT_TRUE(raw.SendFragmented(wire, 1));

    std::vector<Frame> replies;
    ASSERT_TRUE(raw.ReadFrames(2, &replies));
    EXPECT_EQ(replies[0].version, kWireProtocolVersion);
    EXPECT_EQ(replies[0].payload, payload);
    EXPECT_EQ(replies[1].version, kWireProtocolVersionMux);
    EXPECT_EQ(replies[1].correlation_id, 0xC1Du);
    EXPECT_EQ(replies[1].payload, payload);
  }
  server.Stop();
}

TEST_P(RpcMuxTest, SplitMidHeaderAcrossWrites) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());
  {
    RawClient raw(server.port());
    ASSERT_TRUE(raw.connected());

    std::vector<uint8_t> wire;
    const std::vector<uint8_t> payload(100, 0x5A);
    EncodeMuxFrame(static_cast<uint8_t>(RpcType::kHello), 99, payload, &wire);
    // First write ends inside the length prefix; second ends inside the
    // correlation id; the rest arrives in one piece.
    ASSERT_TRUE(raw.Send(wire.data(), 3));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(raw.Send(wire.data() + 3, 8));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(raw.Send(wire.data() + 11, wire.size() - 11));

    std::vector<Frame> replies;
    ASSERT_TRUE(raw.ReadFrames(1, &replies));
    EXPECT_EQ(replies[0].correlation_id, 99u);
    EXPECT_EQ(replies[0].payload, payload);
  }
  server.Stop();
}

TEST_P(RpcMuxTest, InterleavedCorrelationIdsInOneWrite) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());
  {
    RawClient raw(server.port());
    ASSERT_TRUE(raw.connected());

    // Eight pipelined requests, distinct ids and payloads, one send().
    constexpr uint64_t kCount = 8;
    std::vector<uint8_t> wire;
    for (uint64_t cid = 1; cid <= kCount; ++cid) {
      std::vector<uint8_t> payload(16, static_cast<uint8_t>(cid));
      EncodeMuxFrame(static_cast<uint8_t>(RpcType::kHello), cid, payload,
                     &wire);
    }
    ASSERT_TRUE(raw.Send(wire.data(), wire.size()));

    std::vector<Frame> replies;
    ASSERT_TRUE(raw.ReadFrames(kCount, &replies));
    for (const Frame& reply : replies) {
      ASSERT_GE(reply.correlation_id, 1u);
      ASSERT_LE(reply.correlation_id, kCount);
      EXPECT_EQ(reply.payload,
                std::vector<uint8_t>(
                    16, static_cast<uint8_t>(reply.correlation_id)));
    }
  }
  server.Stop();
}

TEST_P(RpcMuxTest, MalformedFrameSeversConnection) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());
  {
    RawClient raw(server.port());
    ASSERT_TRUE(raw.connected());
    // Length prefix claims 4GiB — a poisoned stream the server must drop
    // rather than buffer.
    const uint8_t poison[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x01};
    ASSERT_TRUE(raw.Send(poison, sizeof(poison)));
    EXPECT_TRUE(raw.WaitForClose());
  }
  server.Stop();
}

TEST_P(RpcMuxTest, PipelinedAwaitsOutOfOrder) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());
  {
    MultiplexedRpcChannel channel(server.port());
    constexpr int kInflight = 16;
    std::vector<uint64_t> cids;
    for (int i = 0; i < kInflight; ++i) {
      Frame req;
      req.type = static_cast<uint8_t>(RpcType::kHello);
      req.payload.assign(32, static_cast<uint8_t>(i));
      Result<uint64_t> cid = channel.Start(req);
      ASSERT_TRUE(cid.ok()) << cid.status().ToString();
      cids.push_back(*cid);
    }
    // Await newest-first: replies for earlier ids must be parked and
    // matched by correlation id, not by arrival order.
    for (int i = kInflight - 1; i >= 0; --i) {
      Frame reply;
      Status status = channel.Await(cids[static_cast<size_t>(i)], &reply);
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_EQ(reply.payload,
                std::vector<uint8_t>(32, static_cast<uint8_t>(i)));
    }
    EXPECT_EQ(channel.pending(), 0u);
  }
  server.Stop();
}

TEST_P(RpcMuxTest, SoakManyChannelsManyRpcs) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());
  const int kChannels = SmokeRun() ? 8 : 64;
  const int kRpcsPerChannel = SmokeRun() ? 100 : 1000;
  constexpr size_t kWindow = 8;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(kChannels));
  for (int c = 0; c < kChannels; ++c) {
    threads.emplace_back([&server, &failures, kRpcsPerChannel, c] {
      MultiplexedRpcChannel channel(server.port());
      Frame req;
      req.type = static_cast<uint8_t>(RpcType::kHello);
      req.payload.assign(64, static_cast<uint8_t>(c));
      std::deque<uint64_t> window;
      Frame reply;
      for (int i = 0; i < kRpcsPerChannel; ++i) {
        Result<uint64_t> cid = channel.Start(req);
        if (!cid.ok()) {
          failures.fetch_add(1);
          return;
        }
        window.push_back(*cid);
        if (window.size() >= kWindow) {
          if (!channel.Await(window.front(), &reply).ok() ||
              reply.payload != req.payload) {
            failures.fetch_add(1);
            return;
          }
          window.pop_front();
        }
      }
      while (!window.empty()) {
        if (!channel.Await(window.front(), &reply).ok()) {
          failures.fetch_add(1);
          return;
        }
        window.pop_front();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.frames_served(),
            static_cast<uint64_t>(kChannels) * kRpcsPerChannel);
  server.Stop();
}

TEST_P(RpcMuxTest, ConnectionSlotsReapedEagerly) {
  RpcServer server(EchoHandler, Options());
  ASSERT_TRUE(server.Start().ok());

  // Churn: sequential connect -> one RPC -> disconnect. Slots must be
  // recycled as connections close, not hoarded until Stop().
  constexpr int kChurn = 12;
  for (int i = 0; i < kChurn; ++i) {
    SocketRpcChannel channel(server.port());
    Frame req;
    req.type = static_cast<uint8_t>(RpcType::kHello);
    req.payload = {static_cast<uint8_t>(i)};
    ASSERT_TRUE(channel.Call(req).ok());
  }
  EXPECT_EQ(server.connections_accepted(), static_cast<uint64_t>(kChurn));

  // Teardown is asynchronous (the server notices the close on its next
  // poll/epoll round) — but it must converge to zero live connections
  // while the server keeps running.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.live_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.live_connections(), 0u);

  // And a fresh connection still works after the churn.
  SocketRpcChannel channel(server.port());
  Frame req;
  req.type = static_cast<uint8_t>(RpcType::kHello);
  req.payload = {0x77};
  ASSERT_TRUE(channel.Call(req).ok());
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RpcMuxTest,
    ::testing::Values(RpcServerMode::kEventLoop,
                      RpcServerMode::kThreadPerConnection),
    [](const ::testing::TestParamInfo<RpcServerMode>& info) {
      return info.param == RpcServerMode::kEventLoop ? "epoll"
                                                     : "threadconn";
    });

}  // namespace
}  // namespace ringdde
