// End-to-end scenarios exercising the whole stack together: overlay +
// workload + estimator + baselines + applications, including under churn.
#include <gtest/gtest.h>

#include <memory>

#include "apps/selectivity.h"
#include "baselines/tree_aggregation.h"
#include "core/density_estimator.h"
#include "core/maintenance.h"
#include "data/dataset.h"
#include "data/distribution.h"
#include "ring/churn.h"
#include "stats/metrics.h"

namespace ringdde {
namespace {

TEST(IntegrationTest, FullPipelineOnEveryCanonicalWorkload) {
  for (const auto& dist : StandardBenchmarkDistributions()) {
    Network net;
    ChordRing ring(&net);
    ASSERT_TRUE(ring.CreateNetwork(1024).ok());
    Rng rng(11);
    ring.InsertDatasetBulk(GenerateDataset(*dist, 100000, rng).keys);

    DdeOptions opts;
    opts.num_probes = 384;
    DistributionFreeEstimator est(&ring, opts);
    auto q = ring.RandomAliveNode(rng);
    ASSERT_TRUE(q.ok());
    auto e = est.Estimate(*q);
    ASSERT_TRUE(e.ok()) << dist->Name();
    const AccuracyReport r = CompareCdfToTruth(e->cdf, *dist);
    EXPECT_LT(r.ks, 0.05) << dist->Name();
    EXPECT_NEAR(e->estimated_total_items, 100000.0, 15000.0)
        << dist->Name();
  }
}

TEST(IntegrationTest, EstimationKeepsWorkingDuringActiveChurn) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(512).ok());
  TruncatedNormalDistribution dist(0.5, 0.15);
  Rng rng(13);
  ring.InsertDatasetBulk(GenerateDataset(dist, 50000, rng).keys);

  ChurnOptions copts;
  copts.mean_session_seconds = 60.0;
  copts.stabilize_interval_seconds = 15.0;
  ChurnProcess churn(&ring, copts);
  churn.Start();

  DdeOptions opts;
  opts.num_probes = 192;
  for (int epoch = 0; epoch < 5; ++epoch) {
    net.events().RunUntil((epoch + 1) * 60.0);
    opts.seed = 1000 + epoch;
    DistributionFreeEstimator est(&ring, opts);
    auto q = ring.RandomAliveNode(rng);
    ASSERT_TRUE(q.ok());
    auto e = est.Estimate(*q);
    ASSERT_TRUE(e.ok()) << "epoch " << epoch << ": "
                        << e.status().ToString();
    EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.12)
        << "epoch " << epoch;
  }
  EXPECT_GT(churn.joins() + churn.leaves() + churn.crashes(), 20u);
}

TEST(IntegrationTest, DdeBeatsTreeAggregationOnCost) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(1024).ok());
  UniformDistribution dist;
  Rng rng(17);
  ring.InsertDatasetBulk(GenerateDataset(dist, 50000, rng).keys);

  DdeOptions opts;
  opts.num_probes = 64;
  DistributionFreeEstimator est(&ring, opts);
  auto dde = est.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(dde.ok());

  TreeAggregator tree(&ring);
  auto exact = tree.Estimate(ring.AliveAddrs()[0]);
  ASSERT_TRUE(exact.ok());

  // The trade the paper sells: a fraction of the cost for a modest
  // accuracy loss.
  EXPECT_LT(dde->cost.messages, exact->cost.messages / 2);
  EXPECT_LT(CompareCdfToTruth(dde->cdf, dist).ks, 0.05);
}

TEST(IntegrationTest, QuerierLocationDoesNotMatter) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(512).ok());
  TruncatedExponentialDistribution dist(4.0);
  Rng rng(19);
  ring.InsertDatasetBulk(GenerateDataset(dist, 50000, rng).keys);

  const auto addrs = ring.AliveAddrs();
  for (NodeAddr q : {addrs[0], addrs[100], addrs[511]}) {
    DdeOptions opts;
    opts.num_probes = 256;
    opts.seed = q;  // independent probe randomness per querier
    DistributionFreeEstimator est(&ring, opts);
    auto e = est.Estimate(q);
    ASSERT_TRUE(e.ok());
    EXPECT_LT(CompareCdfToTruth(e->cdf, dist).ks, 0.05);
  }
}

TEST(IntegrationTest, DataUpdatesReflectedAfterRefresh) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(256).ok());
  Rng rng(23);
  // Phase 1: left-heavy data.
  TruncatedNormalDistribution left(0.25, 0.08);
  ring.InsertDatasetBulk(GenerateDataset(left, 30000, rng).keys);

  DdeOptions opts;
  opts.num_probes = 192;
  MaintenanceOptions mopts;
  mopts.refresh_period_seconds = 30.0;
  EstimateMaintainer maintainer(&ring, opts, mopts);
  ASSERT_TRUE(maintainer.Start(ring.AliveAddrs()[0]).ok());
  ASSERT_TRUE(maintainer.current().has_value());
  EXPECT_LT(maintainer.current()->Cdf(0.5) - 1.0, 0.0);
  EXPECT_GT(maintainer.current()->Cdf(0.5), 0.9);  // almost all mass left

  // Phase 2: a flood of right-heavy data arrives.
  TruncatedNormalDistribution right(0.75, 0.08);
  ring.InsertDatasetBulk(GenerateDataset(right, 90000, rng).keys);
  net.events().RunUntil(65.0);  // two refreshes later

  ASSERT_TRUE(maintainer.current().has_value());
  // Now ~75% of the data is right of 0.5.
  EXPECT_NEAR(maintainer.current()->Cdf(0.5), 0.25, 0.06);
  EXPECT_NEAR(maintainer.current()->estimated_total_items, 120000.0,
              18000.0);
}

TEST(IntegrationTest, SelectivityAppUnderChurn) {
  Network net;
  ChordRing ring(&net);
  ASSERT_TRUE(ring.CreateNetwork(256).ok());
  GaussianMixtureDistribution dist({{0.6, 0.3, 0.07}, {0.4, 0.8, 0.05}});
  Rng rng(29);
  ring.InsertDatasetBulk(GenerateDataset(dist, 40000, rng).keys);

  ChurnOptions copts;
  copts.mean_session_seconds = 120.0;
  ChurnProcess churn(&ring, copts);
  churn.Start();
  net.events().RunUntil(120.0);

  DdeOptions opts;
  opts.num_probes = 192;
  DistributionFreeEstimator est(&ring, opts);
  auto q = ring.RandomAliveNode(rng);
  auto e = est.Estimate(*q);
  ASSERT_TRUE(e.ok());
  const auto queries = GenerateRangeQueries(100, 0.1, rng);
  const SelectivityEvalResult r = EvaluateSelectivity(e->cdf, ring, queries);
  EXPECT_LT(r.mean_abs_error, 0.03);
}

}  // namespace
}  // namespace ringdde
