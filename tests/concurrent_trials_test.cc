// Concurrency-model regression tests for the shared-snapshot query engine:
// parallel trials against ONE deployment must reproduce the serial trial
// outputs bit for bit at any thread count (with and without injected
// faults) while performing zero replica builds; the replica-pool and
// deployment-cache layers must reuse instead of rebuild. This binary
// carries the ctest "concurrency" label — configure with
// RINGDDE_SANITIZE=thread and run `ctest -L concurrency` for race
// coverage of the shared read-only snapshot.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/id.h"
#include "core/probe.h"
#include "sim/fault_injector.h"

namespace ringdde::bench {
namespace {

void ExpectSameResult(const RepeatedResult& a, const RepeatedResult& b,
                      const char* what) {
  EXPECT_EQ(a.accuracy.ks, b.accuracy.ks) << what;
  EXPECT_EQ(a.accuracy.l1_cdf, b.accuracy.l1_cdf) << what;
  EXPECT_EQ(a.accuracy.l2_cdf, b.accuracy.l2_cdf) << what;
  EXPECT_EQ(a.accuracy.l1_pdf, b.accuracy.l1_pdf) << what;
  EXPECT_EQ(a.mean_messages, b.mean_messages) << what;
  EXPECT_EQ(a.mean_hops, b.mean_hops) << what;
  EXPECT_EQ(a.mean_bytes, b.mean_bytes) << what;
  EXPECT_EQ(a.mean_total_error, b.mean_total_error) << what;
  EXPECT_EQ(a.mean_peers, b.mean_peers) << what;
}

TEST(SharedSnapshotTest, ParallelEqualsSerialAt1And4And16Threads) {
  DdeOptions opts;
  opts.num_probes = 48;
  constexpr int kReps = 6;
  constexpr uint64_t kSeedBase = 4200;

  auto env = BuildEnv(128, std::make_unique<ZipfDistribution>(1000, 0.9),
                      5000, /*seed=*/21);
  ThreadPool serial(0);
  const RepeatedResult reference =
      RepeatDde(*env, opts, kReps, kSeedBase, &serial);

  for (size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads - 1);
    const uint64_t replicates_before = ReplicateCalls();
    const RepeatedResult r = RepeatDde(*env, opts, kReps, kSeedBase, &pool);
    // Acceptance criterion: a read-only parallel RepeatDde builds ZERO
    // replica deployments — all trials share the snapshot.
    EXPECT_EQ(ReplicateCalls(), replicates_before)
        << threads << " threads replicated the deployment";
    ExpectSameResult(r, reference, "shared-vs-serial");
  }
}

TEST(SharedSnapshotTest, SharedEngineMatchesReplicatedEngine) {
  DdeOptions opts;
  opts.num_probes = 48;
  constexpr int kReps = 5;
  constexpr uint64_t kSeedBase = 910;

  auto env_shared =
      BuildEnv(128, std::make_unique<ZipfDistribution>(1000, 0.9), 5000,
               /*seed=*/33);
  auto env_replicated = env_shared->Replicate();

  ThreadPool pool(3);
  const RepeatedResult shared =
      RepeatDde(*env_shared, opts, kReps, kSeedBase, &pool);
  const RepeatedResult replicated =
      RepeatDdeReplicated(*env_replicated, opts, kReps, kSeedBase, &pool);
  ExpectSameResult(shared, replicated, "shared-vs-replicated");
}

TEST(SharedSnapshotTest, FaultsEnabledParallelEqualsSerial) {
  // A lossy-but-survivable fault plan: trials exercise the TrySend fault
  // branches (drops, retries, per-context send sequences) and must still
  // be bit-identical at every thread count.
  FaultOptions faults;
  faults.drop_probability = 0.05;
  faults.seed = 0xFA17;

  const auto build = [&] {
    auto env = std::make_unique<Env>();
    NetworkOptions nopts;
    nopts.faults = std::make_shared<FaultInjector>(faults);
    env->net = std::make_unique<Network>(nopts);
    RingOptions ropts;
    ropts.seed = 77;
    env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
    EXPECT_TRUE(env->ring->CreateNetwork(96).ok());
    env->dist = std::make_unique<UniformDistribution>();
    env->items = 4000;
    env->peers = 96;
    env->seed = 77;
    Rng rng(77 ^ 0xDA7A);
    env->ring->InsertDatasetBulk(
        GenerateDataset(*env->dist, env->items, rng).keys);
    return env;
  };

  DdeOptions opts;
  opts.num_probes = 48;
  opts.retry.max_attempts = 3;
  constexpr int kReps = 5;
  constexpr uint64_t kSeedBase = 5100;

  auto env = build();
  ThreadPool serial(0);
  const RepeatedResult reference =
      RepeatDde(*env, opts, kReps, kSeedBase, &serial);
  for (size_t threads : {4u, 16u}) {
    ThreadPool pool(threads - 1);
    const RepeatedResult r = RepeatDde(*env, opts, kReps, kSeedBase, &pool);
    ExpectSameResult(r, reference, "faulted shared-vs-serial");
  }
}

TEST(ArcCoverageSetTest, MatchesLinearArcScan) {
  // Randomized equivalence: membership in the interval set must equal
  // "some arc contains t" under InArcOpenClosed, including wrapping arcs.
  Rng rng(0xA2C5);
  for (int round = 0; round < 20; ++round) {
    ArcCoverageSet set;
    std::vector<std::pair<RingId, RingId>> arcs;
    const int arc_count = 1 + static_cast<int>(rng.UniformU64(12));
    for (int i = 0; i < arc_count; ++i) {
      const RingId lo(rng.NextU64());
      // Mix tiny, huge, and wrapping arcs.
      const RingId hi(rng.Bernoulli(0.5) ? rng.NextU64()
                                         : lo.value + 1 + rng.UniformU64(1u << 20));
      arcs.emplace_back(lo, hi);
      set.Add(lo, hi);
    }
    for (int q = 0; q < 400; ++q) {
      const RingId t(rng.NextU64());
      bool linear = false;
      for (const auto& [lo, hi] : arcs) {
        if (InArcOpenClosed(t, lo, hi)) {
          linear = true;
          break;
        }
      }
      EXPECT_EQ(set.Contains(t), linear)
          << "round " << round << " t=" << t.value;
    }
    // Arc boundary semantics: (lo, hi] excludes lo, includes hi.
    const auto [lo, hi] = arcs[0];
    EXPECT_EQ(set.Contains(hi), InArcOpenClosed(hi, lo, hi));
  }
}

TEST(ArcCoverageSetTest, FullRingAndWrapEdgeCases) {
  ArcCoverageSet set;
  EXPECT_FALSE(set.Contains(RingId(0)));

  // Wrapping arc (MAX-10, 5].
  set.Add(RingId(UINT64_MAX - 10), RingId(5));
  EXPECT_TRUE(set.Contains(RingId(UINT64_MAX)));
  EXPECT_TRUE(set.Contains(RingId(0)));
  EXPECT_TRUE(set.Contains(RingId(5)));
  EXPECT_FALSE(set.Contains(RingId(6)));
  EXPECT_FALSE(set.Contains(RingId(UINT64_MAX - 10)));  // lo is excluded

  // Degenerate arc covers everything.
  set.Add(RingId(42), RingId(42));
  EXPECT_TRUE(set.Contains(RingId(42)));
  EXPECT_TRUE(set.Contains(RingId(31337)));
  EXPECT_EQ(set.interval_count(), 1u);

  set.Clear();
  EXPECT_FALSE(set.Contains(RingId(42)));
}

TEST(ReplicaPoolTest, ReusesCleanReplicasAndRebuildsDirtyOnes) {
  auto base = BuildEnv(64, std::make_unique<UniformDistribution>(), 2000,
                       /*seed=*/5);
  ReplicaPool pool(*base);

  // First lease builds; a clean (read-only) lease is reused for free.
  {
    ReplicaPool::Lease lease = pool.Acquire();
    DdeOptions opts;
    opts.num_probes = 16;
    (void)RunDde(lease.env(), opts, 1);
  }
  EXPECT_EQ(pool.builds(), 1u);
  {
    ReplicaPool::Lease lease = pool.Acquire();
    EXPECT_EQ(pool.builds(), 1u);
    // Mutate the deployment: the next leaseholder must get a rebuilt one.
    EXPECT_TRUE(lease.env().ring->InsertKeyBulk(0.25).ok());
  }
  {
    ReplicaPool::Lease lease = pool.Acquire();
    EXPECT_EQ(pool.builds(), 2u);
    EXPECT_EQ(lease.env().ring->TotalItems(), base->ring->TotalItems());
  }
}

TEST(RepeatDdeMutatingTest, LeasedTrialsMatchPerTrialReplicas) {
  // A mutating workload (each trial inserts extra keys before estimating)
  // through the replica pool must equal running each trial on a fresh
  // replica — the pool's reset-between-trials contract.
  auto base = BuildEnv(64, std::make_unique<UniformDistribution>(), 2000,
                       /*seed=*/9);
  DdeOptions opts;
  opts.num_probes = 24;
  constexpr int kReps = 4;
  const auto prepare = [](Env& env, int rep) {
    Rng rng(1000 + static_cast<uint64_t>(rep));
    for (int i = 0; i <= rep; ++i) {
      ASSERT_TRUE(env.ring->InsertKeyBulk(rng.UniformDouble()).ok());
    }
  };

  std::vector<double> expected_messages;
  for (int r = 0; r < kReps; ++r) {
    std::unique_ptr<Env> replica = base->Replicate();
    prepare(*replica, r);
    const DensityEstimate e =
        RunDde(*replica, opts, 77 + static_cast<uint64_t>(r) * 7919);
    expected_messages.push_back(static_cast<double>(e.cost.messages));
  }
  double mean = 0.0;
  for (double m : expected_messages) mean += m;
  mean /= static_cast<double>(kReps);

  ReplicaPool pool(*base);
  ThreadPool workers(3);
  const RepeatedResult r =
      RepeatDdeMutating(pool, opts, kReps, 77, prepare, &workers);
  EXPECT_EQ(r.mean_messages, mean);
  // The pool never built more replicas than concurrent workers + caller.
  EXPECT_LE(pool.builds(), workers.concurrency() + 1);
}

TEST(DeploymentCacheTest, SameRecipeIsSharedDifferentRecipeIsNot) {
  ClearDeploymentCache();
  const UniformDistribution uniform;
  const uint64_t misses_before = DeploymentCacheMisses();
  const uint64_t hits_before = DeploymentCacheHits();

  std::shared_ptr<Env> a = CachedDeployment(48, uniform, 1000, 3);
  std::shared_ptr<Env> b = CachedDeployment(48, uniform, 1000, 3);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(DeploymentCacheMisses(), misses_before + 1);
  EXPECT_EQ(DeploymentCacheHits(), hits_before + 1);

  // Any recipe component change — including distribution parameters via
  // Name() — is a different deployment.
  std::shared_ptr<Env> c = CachedDeployment(48, uniform, 1000, 4);
  EXPECT_NE(a.get(), c.get());
  const ZipfDistribution zipf(1000, 0.9);
  std::shared_ptr<Env> d = CachedDeployment(48, zipf, 1000, 3);
  EXPECT_NE(a.get(), d.get());
  ClearDeploymentCache();
}

TEST(PerQueryContextTest, EstimateCostAccumulatesIntoSharedTotals) {
  // DensityEstimate.cost comes from the query's own context, and the same
  // delta is merged back into the network totals — external shared-counter
  // observers lose nothing.
  auto env = BuildEnv(64, std::make_unique<UniformDistribution>(), 2000,
                      /*seed=*/13);
  const CostCounters before = env->net->counters();
  DdeOptions opts;
  opts.num_probes = 32;
  const DensityEstimate e = RunDde(*env, opts, 5);
  const CostCounters delta = env->net->counters() - before;
  EXPECT_EQ(delta.messages, e.cost.messages);
  EXPECT_EQ(delta.hops, e.cost.hops);
  EXPECT_EQ(delta.bytes, e.cost.bytes);
  EXPECT_GT(e.cost.messages, 0u);
}

}  // namespace
}  // namespace ringdde::bench
