// Epoch-rotation regression tests: the serving-side contract of
// SnapshotManager / EpochView.
//
//  - Quiescent bit-identity: the epoch engine reproduces the live
//    shared-snapshot engine bit for bit at 1/4/16 threads (rotation costs
//    exactness nothing when nothing mutates).
//  - Pin stability: readers pinned to epoch N keep producing bit-identical
//    answers while a mutator thread churns the ring, crashes/hangs nodes
//    via the deterministic fault plan, and publishes later epochs.
//  - Reclamation: retired epochs are destroyed by their last unpin, so the
//    number of live views is bounded by pins + head no matter how many
//    epochs were published.
//  - Incremental publish: unchanged peers are reused (whole captures or at
//    least their key arrays), and clean membership prefixes are reused by
//    aligned rank.
//
// This binary rides the ctest "concurrency" label; configure with
// RINGDDE_SANITIZE=thread and run the label for race coverage of readers
// draining one epoch while the mutator builds the next.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ring/churn.h"
#include "ring/epoch_snapshot.h"
#include "sim/fault_injector.h"

namespace ringdde::bench {
namespace {

void ExpectSameResult(const RepeatedResult& a, const RepeatedResult& b,
                      const char* what) {
  EXPECT_EQ(a.accuracy.ks, b.accuracy.ks) << what;
  EXPECT_EQ(a.accuracy.l1_cdf, b.accuracy.l1_cdf) << what;
  EXPECT_EQ(a.accuracy.l2_cdf, b.accuracy.l2_cdf) << what;
  EXPECT_EQ(a.accuracy.l1_pdf, b.accuracy.l1_pdf) << what;
  EXPECT_EQ(a.mean_messages, b.mean_messages) << what;
  EXPECT_EQ(a.mean_hops, b.mean_hops) << what;
  EXPECT_EQ(a.mean_bytes, b.mean_bytes) << what;
  EXPECT_EQ(a.mean_total_error, b.mean_total_error) << what;
  EXPECT_EQ(a.mean_peers, b.mean_peers) << what;
}

TEST(EpochSnapshotTest, QuiescentEpochEngineMatchesLiveEngineAtAllThreads) {
  DdeOptions opts;
  opts.num_probes = 48;
  constexpr int kReps = 6;
  constexpr uint64_t kSeedBase = 6200;

  auto env = BuildEnv(128, std::make_unique<ZipfDistribution>(1000, 0.9),
                      5000, /*seed=*/41);
  SnapshotManager manager(env->ring.get());
  std::shared_ptr<const EpochView> view = manager.Publish();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->size(), env->ring->AliveCount());
  EXPECT_EQ(view->total_items(), env->ring->TotalItems());

  ThreadPool serial(0);
  const RepeatedResult live =
      RepeatDde(*env, opts, kReps, kSeedBase, &serial);
  for (size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads - 1);
    const RepeatedResult epoch =
        RepeatDdeEpoch(*env, *view, opts, kReps, kSeedBase, &pool);
    ExpectSameResult(epoch, live, "epoch-vs-live quiescent");
  }
}

TEST(EpochSnapshotTest, EpochLookupMatchesLiveLookupWithIdenticalCost) {
  auto env = BuildEnv(96, std::make_unique<UniformDistribution>(), 3000,
                      /*seed=*/51);
  SnapshotManager manager(env->ring.get());
  std::shared_ptr<const EpochView> view = manager.Publish();

  Rng rng(0xE19C);
  for (int i = 0; i < 200; ++i) {
    const RingId target(rng.NextU64());
    Rng pick(0x9E19 + static_cast<uint64_t>(i));
    Result<NodeAddr> from = env->ring->RandomAliveNode(pick);
    ASSERT_TRUE(from.ok());

    CostContext live_ctx(1);
    CostContext epoch_ctx(1);
    Result<NodeAddr> live = env->ring->Lookup(live_ctx, *from, target);
    Result<NodeAddr> epoch = view->Lookup(epoch_ctx, *from, target);
    ASSERT_EQ(live.ok(), epoch.ok());
    if (live.ok()) {
      EXPECT_EQ(*live, *epoch);
    }
    EXPECT_EQ(live_ctx.counters.messages, epoch_ctx.counters.messages);
    EXPECT_EQ(live_ctx.counters.hops, epoch_ctx.counters.hops);
    EXPECT_EQ(live_ctx.counters.bytes, epoch_ctx.counters.bytes);
  }
}

TEST(EpochSnapshotTest, PinnedEpochStableUnderChurnAndInjectedFaults) {
  // Crash/hang windows open as virtual time advances, i.e. mid-rotation:
  // later epochs see different fault verdicts and membership, but readers
  // pinned to epoch 1 must keep reproducing the pre-mutation reference bit
  // for bit (their fault clock is frozen to the view's publish time).
  FaultOptions faults;
  faults.drop_probability = 0.04;
  faults.crash_probability = 0.05;
  faults.crash_start_max_seconds = 50.0;
  faults.hang_probability = 0.05;
  faults.hang_start_max_seconds = 50.0;
  faults.hang_duration_seconds = 30.0;
  faults.seed = 0xEF19;

  auto env = std::make_unique<Env>();
  NetworkOptions nopts;
  nopts.faults = std::make_shared<FaultInjector>(faults);
  env->net = std::make_unique<Network>(nopts);
  RingOptions ropts;
  ropts.seed = 61;
  env->ring = std::make_unique<ChordRing>(env->net.get(), ropts);
  ASSERT_TRUE(env->ring->CreateNetwork(96).ok());
  env->dist = std::make_unique<UniformDistribution>();
  env->items = 4000;
  env->peers = 96;
  env->seed = 61;
  Rng data_rng(61 ^ 0xDA7A);
  env->ring->InsertDatasetBulk(
      GenerateDataset(*env->dist, env->items, data_rng).keys);

  DdeOptions opts;
  opts.num_probes = 48;
  opts.retry.max_attempts = 3;
  constexpr int kReps = 5;
  constexpr uint64_t kSeedBase = 7300;

  SnapshotManager manager(env->ring.get());
  std::shared_ptr<const EpochView> pinned = manager.Publish();

  // Reference outputs for epoch 1, computed before any mutation.
  ThreadPool serial(0);
  const RepeatedResult reference =
      RepeatDdeEpoch(*env, *pinned, opts, kReps, kSeedBase, &serial);

  // Mutator thread: churn + stabilization + periodic publishes, advancing
  // virtual time through the crash/hang windows.
  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    ChurnOptions copts;
    copts.mean_session_seconds = 120.0;
    ChurnProcess churn(env->ring.get(), copts);
    churn.Start();
    while (!stop.load(std::memory_order_acquire)) {
      env->net->events().RunUntil(env->net->Now() + 2.0);
      manager.Publish();
    }
  });

  for (size_t threads : {1u, 4u, 16u}) {
    ThreadPool pool(threads - 1);
    const RepeatedResult r =
        RepeatDdeEpoch(*env, *pinned, opts, kReps, kSeedBase, &pool);
    ExpectSameResult(r, reference, "pinned epoch under churn+faults");
  }
  stop.store(true, std::memory_order_release);
  mutator.join();

  // The mutator actually rotated epochs past the pin.
  EXPECT_GT(manager.head_sequence(), pinned->sequence());
  // Pinned + head are both alive; dropping the pin reclaims it.
  EXPECT_GE(manager.live_views(), 2u);
  const uint64_t reclaimed_before = manager.views_reclaimed();
  pinned.reset();
  EXPECT_EQ(manager.views_reclaimed(), reclaimed_before + 1);
  EXPECT_EQ(manager.live_views(), 1u);
}

TEST(EpochSnapshotTest, RetiredEpochsAreReclaimedWhenUnpinned) {
  auto env = BuildEnv(64, std::make_unique<UniformDistribution>(), 1000,
                      /*seed=*/71);
  SnapshotManager manager(env->ring.get());
  std::shared_ptr<const EpochView> first = manager.Publish();
  EXPECT_EQ(manager.live_views(), 1u);

  // Rotate many epochs holding no extra pins: every superseded head is
  // destroyed as soon as Publish() drops it, so live views never exceed
  // the transient {old head, new head} pair.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(env->ring->InsertKeyBulk(0.25 + 0.02 * i).ok());
    manager.Publish();
    EXPECT_LE(manager.live_views(), 2u + 1u /* `first` pin */);
  }
  EXPECT_EQ(manager.stats().publishes, 21u);
  EXPECT_EQ(manager.views_reclaimed(), 19u);

  // `first` is still valid while pinned...
  EXPECT_EQ(first->sequence(), 1u);
  EXPECT_GT(first->size(), 0u);
  // ...and reclaimed exactly when released.
  first.reset();
  EXPECT_EQ(manager.views_reclaimed(), 20u);
  EXPECT_EQ(manager.live_views(), 1u);
}

TEST(EpochSnapshotTest, RepublishWithoutMutationIsANoop) {
  auto env = BuildEnv(64, std::make_unique<UniformDistribution>(), 1000,
                      /*seed=*/81);
  SnapshotManager manager(env->ring.get());
  std::shared_ptr<const EpochView> a = manager.Publish();
  std::shared_ptr<const EpochView> b = manager.Publish();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(manager.stats().publishes, 1u);
  EXPECT_EQ(manager.stats().republish_noops, 1u);
}

TEST(EpochSnapshotTest, IncrementalPublishReusesUnchangedCaptures) {
  auto env = BuildEnv(128, std::make_unique<UniformDistribution>(), 4000,
                      /*seed=*/91);
  SnapshotManager manager(env->ring.get());
  manager.Publish();
  const uint64_t built_initial = manager.stats().node_views_built;
  EXPECT_EQ(built_initial, 128u);

  // Data-only mutation: one owner's store changes. Membership shards are
  // all clean, so the whole flat array is an aligned prefix and every
  // other capture is shared with the previous epoch.
  ASSERT_TRUE(env->ring->InsertKeyBulk(0.5).ok());
  std::shared_ptr<const EpochView> after = manager.Publish();
  const SnapshotManager::Stats& s = manager.stats();
  EXPECT_EQ(s.node_views_built, built_initial + 1);
  EXPECT_EQ(s.node_views_reused, 127u);
  EXPECT_EQ(s.prefix_entries_reused, 128u);
  EXPECT_EQ(after->total_items(), env->ring->TotalItems());

  // Membership mutation: a leave rewrites routing state around the gap
  // but most key arrays still carry over between the epochs.
  const uint64_t keys_built_before = manager.stats().key_arrays_built;
  Rng rng(0x91);
  Result<NodeAddr> victim = env->ring->RandomAliveNode(rng);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(env->ring->Leave(*victim).ok());
  env->ring->StabilizeAll();
  std::shared_ptr<const EpochView> final_view = manager.Publish();
  EXPECT_EQ(final_view->size(), 127u);
  const uint64_t keys_built =
      manager.stats().key_arrays_built - keys_built_before;
  const uint64_t keys_reused = manager.stats().key_arrays_reused;
  EXPECT_GT(keys_reused, 0u);
  // Routing rewrites touch many peers (successor lists, fingers), but only
  // the leave's key handover actually moves data.
  EXPECT_LT(keys_built, 16u);
  EXPECT_EQ(final_view->total_items(), env->ring->TotalItems());
}

}  // namespace
}  // namespace ringdde::bench
