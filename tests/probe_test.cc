#include "core/probe.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

namespace ringdde {
namespace {

class ProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>();
    ring_ = std::make_unique<ChordRing>(net_.get());
    ASSERT_TRUE(ring_->CreateNetwork(128).ok());
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
      ASSERT_TRUE(ring_->InsertKeyBulk(rng.UniformDouble()).ok());
    }
  }

  std::unique_ptr<Network> net_;
  std::unique_ptr<ChordRing> ring_;
};

TEST_F(ProbeTest, ProbeReachesOwner) {
  CdfProber prober(ring_.get());
  const NodeAddr querier = ring_->AliveAddrs()[0];
  const RingId target(0x8000000000000000ULL);
  Result<LocalSummary> s = prober.Probe(querier, target);
  ASSERT_TRUE(s.ok());
  Result<NodeAddr> oracle = ring_->OracleOwner(target);
  EXPECT_EQ(s->addr, *oracle);
  EXPECT_TRUE(InArcOpenClosed(target, s->arc_lo, s->arc_hi));
}

TEST_F(ProbeTest, ProbeChargesLookupPlusSummary) {
  CdfProber prober(ring_.get());
  const NodeAddr querier = ring_->AliveAddrs()[0];
  CostScope scope(net_->counters());
  ASSERT_TRUE(prober.Probe(querier, RingId(42)).ok());
  const CostCounters d = scope.Delta();
  EXPECT_GE(d.messages, 2u);  // at minimum the summary round trip
  EXPECT_GT(d.bytes, 0u);
}

TEST_F(ProbeTest, ProbeUniformDedupesOwners) {
  CdfProber prober(ring_.get());
  Rng rng(2);
  std::vector<LocalSummary> out;
  // Far more probes than peers: every peer fetched at most once.
  prober.ProbeUniform(ring_->AliveAddrs()[0], 2000, rng, &out);
  EXPECT_LE(out.size(), 128u);
  EXPECT_GT(out.size(), 100u);
  std::set<NodeAddr> owners;
  for (const auto& s : out) owners.insert(s.addr);
  EXPECT_EQ(owners.size(), out.size());
}

TEST_F(ProbeTest, ProbeTargetsSkipsCoveredArcs) {
  CdfProber prober(ring_.get());
  const NodeAddr querier = ring_->AliveAddrs()[0];
  std::vector<LocalSummary> out;
  const RingId target(0x1234567890ABCDEFULL);
  prober.ProbeTargets(querier, {target}, &out);
  ASSERT_EQ(out.size(), 1u);
  // Probing the same position again must not spend messages.
  CostScope scope(net_->counters());
  prober.ProbeTargets(querier, {target}, &out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(scope.Delta().messages, 0u);
}

TEST_F(ProbeTest, SummariesCarryConfiguredQuantiles) {
  CdfProber prober(ring_.get(), ProbeOptions{12});
  Rng rng(3);
  std::vector<LocalSummary> out;
  prober.ProbeUniform(ring_->AliveAddrs()[0], 20, rng, &out);
  ASSERT_FALSE(out.empty());
  for (const auto& s : out) {
    if (s.item_count > 0) {
      EXPECT_EQ(s.quantiles.size(), 12u);
    }
  }
}

TEST_F(ProbeTest, DeadQuerierRejected) {
  CdfProber prober(ring_.get());
  const NodeAddr victim = ring_->AliveAddrs()[1];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  Result<LocalSummary> s = prober.Probe(victim, RingId(1));
  EXPECT_FALSE(s.ok());
}

TEST_F(ProbeTest, FailedProbesCounted) {
  CdfProber prober(ring_.get());
  const NodeAddr victim = ring_->AliveAddrs()[1];
  ASSERT_TRUE(ring_->Crash(victim).ok());
  EXPECT_FALSE(prober.Probe(victim, RingId(1)).ok());
  EXPECT_EQ(prober.failed_probes(), 1u);
}

TEST_F(ProbeTest, SummariesTileWithoutOverlapWhenStable) {
  CdfProber prober(ring_.get());
  Rng rng(5);
  std::vector<LocalSummary> out;
  prober.ProbeUniform(ring_->AliveAddrs()[0], 5000, rng, &out);
  // With (nearly) all peers probed, total arc width approaches 1.
  double width = 0.0;
  for (const auto& s : out) width += s.ArcWidth();
  EXPECT_GT(width, 0.95);
  EXPECT_LE(width, 1.0 + 1e-9);
}

}  // namespace
}  // namespace ringdde
