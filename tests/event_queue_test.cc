#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ringdde {
namespace {

TEST(EventQueueTest, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.Now(), 0.0);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, TieBreaksFifo) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(1.0, [&] { order.push_back(2); });
  q.ScheduleAt(1.0, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.ScheduleAt(5.0, [&] {
    q.ScheduleAfter(2.0, [&] { fired_at = q.Now(); });
  });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(10.0, [&] { ++fired; });
  EXPECT_EQ(q.RunUntil(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.Now(), 5.0);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_EQ(q.RunUntil(20.0), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventAtExactBoundaryFires) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunAll();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(999));
  EXPECT_FALSE(q.Cancel(0));
}

TEST(EventQueueTest, HandlersCanScheduleMore) {
  EventQueue q;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) q.ScheduleAfter(1.0, step);
  };
  q.ScheduleAfter(1.0, step);
  EXPECT_EQ(q.RunAll(), 5u);
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(q.Now(), 5.0);
}

TEST(EventQueueTest, RunAllRespectsCap) {
  EventQueue q;
  int fired = 0;
  std::function<void()> forever = [&] {
    ++fired;
    q.ScheduleAfter(1.0, forever);
  };
  q.ScheduleAfter(1.0, forever);
  EXPECT_EQ(q.RunAll(10), 10u);
  EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  q.ScheduleAt(1.0, [] {});
  const EventId id = q.ScheduleAt(2.0, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(id);
  EXPECT_EQ(q.PendingCount(), 1u);
  EXPECT_FALSE(q.Empty());
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(42.0);
  EXPECT_DOUBLE_EQ(q.Now(), 42.0);
}

}  // namespace
}  // namespace ringdde
